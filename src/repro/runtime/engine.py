"""Inference engine over the deployment IR (the ONNX-Runtime stage).

Executes a :class:`~repro.runtime.graph.GraphModel` with a pluggable GEMM
backend:

* ``backend="numpy"`` -- fast integer reference;
* ``backend="mixgemm"`` -- the bit-exact u-engine simulator; per-layer
  cycle counts are collected so a deployment run doubles as a
  performance measurement (what the paper's FPGA runs produce).

Quantized layers replay the exact training-time arithmetic: activations
quantize per-tensor with the learned scale shipped in the graph, weights
per-channel with absmax scales recomputed from the shipped weights (the
same rule QAT trained against), zero-points are zero -- so the integer
pipeline reproduces the QAT forward bit for bit (asserted in tests).

The engine also hosts the hardened-runtime machinery
(:mod:`repro.robustness`): a ``guard_level`` knob arms integrity checks
from NaN/Inf fences up to per-layer shadow verification against the
numpy reference, a ``fault_plan`` wires a deterministic fault injector
into the simulated datapath, and :class:`InferenceResult` reports every
detection and recovery, so a run doubles as a reliability report.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import (
    BlockingParams,
    DEFAULT_ACCMEM_BITS,
    EXECUTION_BACKENDS,
    MixGemmConfig,
)
from repro.core.gemm import GemmResult, MixGemm, reference_gemm
from repro.core.packcache import PackCacheStats, PackingCache
from repro.nn.functional_quant import weight_absmax_scale
from repro.nn.im2col import conv_geometry, im2row, rows_to_nchw
from repro.quant.affine import QuantParams, quantize
from repro.robustness.errors import GuardError, ReliabilityWarning
from repro.robustness.faults import FaultInjector, FaultPlan
from repro.robustness.guards import (
    GUARD_LEVELS,
    PackGuard,
    TensorVault,
    check_finite,
    guard_rank,
    static_precheck,
)
from repro.robustness.recovery import (
    FaultEvent,
    RecoveryPolicy,
    ShadowVerifier,
)

from . import ops
from .graph import GraphError, GraphModel, NodeSpec
from .observe import observe_range

#: Blocking used by the simulator backend for runtime layers: small tiles
#: keep the event-driven engine fast on laptop-scale models.  Public so
#: the static contract checker (``repro.analysis``) can reason about the
#: exact per-block accumulation depth the engine will use.
SIM_BLOCKING = BlockingParams(mc=16, nc=16, kc=64)

#: Backwards-compatible alias (pre-analysis name).
_SIM_BLOCKING = SIM_BLOCKING


@dataclass
class LayerStats:
    """Per-quantized-layer execution record (mixgemm backend only).

    ``layer`` is the node's effective id (explicit ``id`` or the
    positional ``n<i>`` default), so per-layer cycle reports can name
    the layer they measured.
    """

    op: str
    config: str
    macs: int
    cycles: int
    layer: str = ""

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0


@dataclass
class InferenceResult:
    """Output batch plus simulator statistics and the reliability log.

    ``fault_events`` records every guard detection (and what the
    recovery policy did about it); ``recovered_layers`` lists the nodes
    whose output was salvaged by retry, vault restore or reference
    fallback.  A clean run has both empty.
    """

    output: np.ndarray
    layer_stats: list[LayerStats] = field(default_factory=list)
    fault_events: list[FaultEvent] = field(default_factory=list)
    recovered_layers: list[str] = field(default_factory=list)
    guard_level: str = "off"

    @property
    def total_cycles(self) -> int:
        return sum(s.cycles for s in self.layer_stats)

    @property
    def total_macs(self) -> int:
        return sum(s.macs for s in self.layer_stats)

    def gops(self, freq_ghz: float = 1.2) -> float:
        if self.total_cycles == 0:
            return 0.0
        return 2.0 * self.total_macs / self.total_cycles * freq_ghz

    def reliability_report(self) -> dict:
        """Structured summary of what the guards saw during this run."""
        by_guard: dict[str, int] = {}
        for e in self.fault_events:
            by_guard[e.detected_by] = by_guard.get(e.detected_by, 0) + 1
        return {
            "guard_level": self.guard_level,
            "detections": len(self.fault_events),
            "by_guard": by_guard,
            "recovered_layers": list(self.recovered_layers),
        }


class InferenceEngine:
    """Run a deployment graph on a chosen GEMM backend.

    Parameters
    ----------
    graph:
        The deployment IR to execute.
    backend:
        ``"numpy"`` (integer reference) or ``"mixgemm"`` (u-engine
        simulator with per-layer cycle accounting).
    guard_level:
        One of :data:`~repro.robustness.guards.GUARD_LEVELS`
        (``off`` / ``light`` / ``standard`` / ``full``); see
        :mod:`repro.robustness.guards` for what each level arms.
    fault_plan:
        Optional :class:`~repro.robustness.faults.FaultPlan`; when given,
        a :class:`~repro.robustness.faults.FaultInjector` is wired into
        the packed-operand and AccMem paths (and shipped weights) so the
        guard stack can be exercised deterministically.
    recovery:
        Escalation policy for detections
        (:class:`~repro.robustness.recovery.RecoveryPolicy`); its
        ``static_precheck`` flag controls whether fault-injection runs
        contract-check the graph first (see :meth:`run`).
    accmem_bits:
        Two's-complement width of the simulated AccMem accumulator
        registers (default: the paper's 64-bit slots).  The static
        checker's ``ACC-OVERFLOW`` verdicts are computed against this
        same width, so the two stay in agreement by construction.
    gemm_backend:
        Execution backend *within* the mixgemm simulator: ``"event"``,
        ``"fast"`` or ``"auto"`` (see :mod:`repro.core.backend`).  With
        ``auto``, guard-free inference rides the vectorized fast path;
        arming fault injection, pack guards or shadow verification
        forces per-call event fidelity automatically.  Ignored by the
        numpy backend.
    compiled:
        Compile the graph into a :class:`~repro.runtime.plan.GraphPlan`
        on first use and serve ``run()`` from it (bit-exact, much
        faster).  Arming guards or a fault plan transparently falls
        back to the uncompiled per-call path -- those features need to
        observe the per-call pipeline the plan hoists away.
    """

    def __init__(self, graph: GraphModel, *,
                 backend: str = "numpy",
                 guard_level: str = "off",
                 fault_plan: Optional[FaultPlan] = None,
                 recovery: Optional[RecoveryPolicy] = None,
                 accmem_bits: int = DEFAULT_ACCMEM_BITS,
                 gemm_backend: str = "auto",
                 compiled: bool = False) -> None:
        if backend not in ("numpy", "mixgemm"):
            raise GraphError(f"unknown backend: {backend}")
        if gemm_backend not in EXECUTION_BACKENDS:
            raise GraphError(f"unknown gemm backend: {gemm_backend}")
        self.graph = graph
        self.backend = backend
        self.gemm_backend = gemm_backend
        # One cache for the whole deployment: static weights are packed
        # once per graph and reused across layers, batches and repeated
        # infer() calls (the BLIS amortization the paper assumes).
        self._pack_cache = PackingCache()
        self.accmem_bits = accmem_bits
        self.guard_level = guard_level
        self._guard_rank = guard_rank(guard_level)
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        self.injector = (FaultInjector(fault_plan)
                         if fault_plan is not None else None)
        # The vault snapshots the *clean* graph at bind time; injected
        # weight corruption happens later, at run().
        self._vault = (TensorVault.snapshot(graph)
                       if self._guard_rank >= 2 else None)
        self._shadow = (ShadowVerifier()
                        if self._guard_rank >= 3 and backend == "mixgemm"
                        else None)
        self._current_label = ""
        self._compiled = compiled
        self._plan = None

    #: Ops consuming more than one upstream tensor.
    _BINARY_OPS = frozenset({"add", "channel_scale"})

    # -- public API ------------------------------------------------------------

    def compile(self, *, fuse: bool = True, tuned: bool = False,
                tune_cache=None):
        """Compile the graph into a reusable plan and adopt it for runs.

        Returns the :class:`~repro.runtime.plan.GraphPlan`; subsequent
        :meth:`run` calls are served from it whenever the robustness
        machinery is disarmed (``guard_level="off"``, no fault plan).
        The plan shares this engine's packing cache, so ``pack_stats``
        keeps accounting for both paths.  ``tuned=True`` consults the
        autotuner result cache for per-layer blocking (``tune_cache``
        overrides the default on-disk location).
        """
        from .plan import compile_graph

        self._plan = compile_graph(
            self.graph, backend=self.backend,
            gemm_backend=self.gemm_backend, accmem_bits=self.accmem_bits,
            pack_cache=self._pack_cache, fuse=fuse,
            tuned=tuned, tune_cache=tune_cache,
        )
        return self._plan

    def _plan_usable(self) -> bool:
        """Compiled serving is only exact when nothing per-call is armed.

        Guards, shadow verification and fault injection all observe the
        per-call pipeline (fresh quantization, packing, executors) that
        compilation hoists away, so their presence transparently routes
        back to the uncompiled path -- PR-1 robustness semantics stay
        untouched.
        """
        if not (self._compiled or self._plan is not None):
            return False
        if self.injector is not None or self._guard_rank >= 1:
            return False
        if self._plan is None:
            self.compile()
        return True

    def run(self, x: np.ndarray) -> InferenceResult:
        """Execute the graph on a batch; NCHW for conv models.

        Nodes without explicit ``inputs`` consume the previous node's
        output (the Sequential chain); DAG graphs wire branches via node
        ids, with ``"input"`` naming the model input.
        """
        if self._plan_usable():
            return self._plan.run(x)
        self._validate_node_ids()
        if self.injector is not None:
            # A fault campaign over a graph that violates its static
            # contracts measures nothing: wraps/crashes would be the
            # model's fault, not the injected fault's.  Prove the graph
            # clean first (skippable via recovery.static_precheck).
            if self.recovery.static_precheck:
                static_precheck(self.graph, accmem_bits=self.accmem_bits,
                                blocking=SIM_BLOCKING)
            self.injector.corrupt_weights(self.graph)
        result = InferenceResult(output=np.asarray(x, dtype=np.float64),
                                 guard_level=self.guard_level)
        values: dict[str, np.ndarray] = {"input": result.output}
        prev = "input"
        quant_calls = 0
        for i, node in enumerate(self.graph):
            label = node.id or f"n{i}"
            self._current_label = label
            if node.op in ("quant_conv2d", "quant_linear"):
                if self.injector is not None:
                    self.injector.begin_layer(quant_calls)
                quant_calls += 1
            if self._vault is not None and node.tensors:
                self._verify_tensors(i, node, label, result)
            input_ids = node.inputs or [prev]
            try:
                arrays = [values[name] for name in input_ids]
            except KeyError as exc:
                raise GraphError(
                    f"node {node.op} references unknown tensor {exc}"
                ) from None
            out = self._dispatch(node, arrays, result)
            # Range-sanitizer tap: only the mixgemm backend realizes the
            # finite-AccMem wrap semantics the static intervals model
            # (the numpy reference accumulates unwrapped), and injected
            # faults legitimately escape any clean-run interval.
            if self.backend == "mixgemm" and self.injector is None:
                observe_range(label, "out", out)
            if self._guard_rank >= 1:
                check_finite(label, out)
            prev = label
            values[prev] = out
        result.output = values[prev]
        return result

    def _validate_node_ids(self) -> None:
        """Reject id collisions that would silently overwrite tensors."""
        seen: set[str] = set()
        for i, node in enumerate(self.graph):
            nid = node.id or f"n{i}"
            if nid == "input":
                raise GraphError(
                    f"node {i} ({node.op}) uses the reserved id 'input'"
                )
            if nid in seen:
                raise GraphError(
                    f"duplicate node id {nid!r} at node {i} ({node.op}); "
                    f"its output would overwrite an earlier tensor"
                )
            seen.add(nid)

    def _verify_tensors(self, index: int, node: NodeSpec, label: str,
                        result: InferenceResult) -> None:
        """Weight-vault check: restore corrupted tensors before use."""
        for name in self._vault.verify_and_restore(index, node):
            result.fault_events.append(FaultEvent(
                layer=label, op=node.op, detected_by="weight",
                action="restored",
                message=(f"tensor {name!r} failed its bind-time CRC and "
                         f"was restored from the vault replica"),
            ))
            if label not in result.recovered_layers:
                result.recovered_layers.append(label)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class ids for a batch (softmax-free argmax)."""
        return self.run(x).output.argmax(axis=1)

    @property
    def pack_stats(self) -> PackCacheStats:
        """Packing-cache accounting (``packs`` = actual pack calls)."""
        return self._pack_cache.stats

    # -- op implementations -------------------------------------------------------

    def _dispatch(self, node: NodeSpec, arrays: list[np.ndarray],
                  result: InferenceResult) -> np.ndarray:
        handler = getattr(self, f"_op_{node.op}", None)
        if handler is None:
            raise GraphError(f"unsupported op: {node.op}")
        if node.op in self._BINARY_OPS:
            if len(arrays) != 2:
                raise GraphError(
                    f"{node.op} needs exactly 2 inputs, got {len(arrays)}"
                )
            return handler(node, arrays, result)
        if len(arrays) != 1:
            raise GraphError(
                f"{node.op} takes one input, got {len(arrays)}"
            )
        return handler(node, arrays[0], result)

    # --- binary ops (DAG topologies) ---

    def _op_add(self, node: NodeSpec, arrays: list[np.ndarray],
                result: InferenceResult) -> np.ndarray:
        """Elementwise residual addition."""
        a, b = arrays
        if a.shape != b.shape:
            raise GraphError(
                f"add shape mismatch: {a.shape} vs {b.shape}"
            )
        return a + b

    def _op_channel_scale(self, node: NodeSpec,
                          arrays: list[np.ndarray],
                          result: InferenceResult) -> np.ndarray:
        """Squeeze-excite gating: NCHW features x (N, C) gates."""
        x, s = arrays
        if s.shape != x.shape[:2]:
            raise GraphError(
                f"channel_scale gates {s.shape} do not match "
                f"features {x.shape}"
            )
        return ops.channel_scale(x, s)

    def _op_sigmoid(self, node, x, result):
        return ops.sigmoid(x)

    # --- quantized linear algebra ---

    def _quant_qparams(self, node: NodeSpec
                       ) -> tuple[QuantParams, QuantParams]:
        attrs = node.attrs
        act_qp = QuantParams(
            scale=attrs["act_scale"], zero_point=0.0,
            bits=attrs["act_bits"], signed=attrs["act_signed"],
        )
        w = node.tensors["weight"]
        w_scale = weight_absmax_scale(w, attrs["weight_bits"],
                                      channel_axis=0)
        wgt_qp = QuantParams(
            scale=w_scale, zero_point=0.0,
            bits=attrs["weight_bits"], signed=True, axis=0,
        )
        return act_qp, wgt_qp

    def _quant_weights(self, node: NodeSpec,
                       wgt_qp: QuantParams) -> np.ndarray:
        """Quantize a node's shipped weights for one uncompiled call.

        Deliberately *per call*: fault campaigns corrupt the shipped
        float weights between runs, and the vault restores them, so the
        uncompiled path must observe the tensor as it is now.  Static
        deployments hoist this through :meth:`compile` instead; the
        REP007 lint rule keeps ``quantize`` of weight tensors out of the
        per-call op handlers so the split stays explicit.
        """
        return quantize(node.tensors["weight"], wgt_qp)

    def _integer_gemm(self, x_q: np.ndarray, w_q: np.ndarray,
                      act_bits: int, weight_bits: int,
                      act_signed: bool, result: InferenceResult,
                      op: str) -> np.ndarray:
        if self.backend == "numpy":
            return x_q @ w_q
        config = MixGemmConfig(
            bw_a=act_bits, bw_b=weight_bits,
            signed_a=act_signed, signed_b=True,
            blocking=SIM_BLOCKING, accmem_bits=self.accmem_bits,
        )
        pack_guard = PackGuard(config) if self._guard_rank >= 2 else None
        reference = (self._shadow.reference(x_q, w_q)
                     if self._shadow is not None else None)
        label = self._current_label
        detected = False
        attempts = self.recovery.max_retries + 1
        for attempt in range(attempts):
            retrying = attempt < attempts - 1
            executor = MixGemm(config, emulate_datapath=False,
                               fault_hook=self.injector,
                               pack_guard=pack_guard,
                               backend=self.gemm_backend,
                               pack_cache=self._pack_cache)
            try:
                gemm: GemmResult = executor.gemm(x_q, w_q)
            except GuardError as exc:
                detected = True
                result.fault_events.append(FaultEvent(
                    layer=label, op=op, detected_by=exc.guard,
                    action="retried" if retrying else "fallback",
                    message=str(exc),
                ))
                if retrying:
                    continue
                return self._degrade(x_q, w_q, result, label, op, reference)
            if (reference is not None
                    and not self._shadow.matches(gemm.c, reference)):
                detected = True
                result.fault_events.append(FaultEvent(
                    layer=label, op=op, detected_by="shadow",
                    action="retried" if retrying else "fallback",
                    message=("simulated output disagrees with the "
                             "integer reference"),
                ))
                if retrying:
                    continue
                return self._degrade(x_q, w_q, result, label, op, reference)
            if self.injector is None and not detected:
                observe_range(label, "act", x_q)
                observe_range(label, "acc", gemm.c)
            result.layer_stats.append(LayerStats(
                op=op, config=config.name, macs=gemm.macs,
                cycles=gemm.cycles, layer=label,
            ))
            if detected and label not in result.recovered_layers:
                result.recovered_layers.append(label)
            return gemm.c
        raise AssertionError("unreachable")  # pragma: no cover

    def _degrade(self, x_q: np.ndarray, w_q: np.ndarray,
                 result: InferenceResult, label: str, op: str,
                 reference: Optional[np.ndarray]) -> np.ndarray:
        """Retries exhausted: degrade to the reference backend or raise."""
        if not self.recovery.fallback:
            raise GuardError(
                f"layer {label} ({op}) failed every guarded attempt and "
                f"fallback is disabled",
                guard="recovery",
            )
        value = reference if reference is not None else reference_gemm(
            x_q, w_q)
        if label not in result.recovered_layers:
            result.recovered_layers.append(label)
        if self.recovery.warn:
            warnings.warn(ReliabilityWarning(
                f"layer {label} ({op}) fell back to the numpy reference "
                f"after exhausting {self.recovery.max_retries} retries"
            ), stacklevel=3)
        return value

    def _op_quant_linear(self, node: NodeSpec, x: np.ndarray,
                         result: InferenceResult) -> np.ndarray:
        act_qp, wgt_qp = self._quant_qparams(node)
        x_q = quantize(x, act_qp)
        w_q = self._quant_weights(node, wgt_qp)
        acc = self._integer_gemm(
            x_q, w_q.T, node.attrs["act_bits"], node.attrs["weight_bits"],
            node.attrs["act_signed"], result, "quant_linear",
        )
        y = acc.astype(np.float64) * (float(act_qp.scale) * wgt_qp.scale)
        bias = node.tensors.get("bias")
        return y + bias if bias is not None else y

    def _op_quant_conv2d(self, node: NodeSpec, x: np.ndarray,
                         result: InferenceResult) -> np.ndarray:
        act_qp, wgt_qp = self._quant_qparams(node)
        w = node.tensors["weight"]
        attrs = node.attrs
        geo = conv_geometry(x.shape, w.shape, attrs["stride"],
                            attrs["padding"], attrs["groups"])
        x_q = quantize(x, act_qp)
        w_q = self._quant_weights(node, wgt_qp)
        groups = attrs["groups"]
        cpg = geo.in_channels // groups
        fpg = geo.out_channels // groups
        outs = []
        for g in range(groups):
            rows = im2row(
                x_q[:, g * cpg:(g + 1) * cpg],
                geo.kernel_h, geo.kernel_w, attrs["stride"],
                attrs["padding"],
            )
            wg = w_q[g * fpg:(g + 1) * fpg].reshape(fpg, -1).T
            outs.append(self._integer_gemm(
                rows, wg, attrs["act_bits"], attrs["weight_bits"],
                attrs["act_signed"], result, "quant_conv2d",
            ))
        acc = np.concatenate(outs, axis=1)
        y = acc.astype(np.float64) * (float(act_qp.scale)
                                      * wgt_qp.scale[None, :])
        y = rows_to_nchw(y, geo.batch, geo.out_h, geo.out_w)
        bias = node.tensors.get("bias")
        if bias is not None:
            y = y + bias.reshape(1, -1, 1, 1)
        return y

    # --- float ops ---

    def _op_conv2d(self, node: NodeSpec, x: np.ndarray,
                   result: InferenceResult) -> np.ndarray:
        w = node.tensors["weight"]
        attrs = node.attrs
        geo = conv_geometry(x.shape, w.shape, attrs["stride"],
                            attrs["padding"], attrs["groups"])
        groups = attrs["groups"]
        cpg = geo.in_channels // groups
        fpg = geo.out_channels // groups
        outs = []
        for g in range(groups):
            rows = im2row(x[:, g * cpg:(g + 1) * cpg], geo.kernel_h,
                          geo.kernel_w, attrs["stride"], attrs["padding"])
            outs.append(rows @ w[g * fpg:(g + 1) * fpg].reshape(fpg, -1).T)
        y = rows_to_nchw(np.concatenate(outs, axis=1), geo.batch,
                         geo.out_h, geo.out_w)
        bias = node.tensors.get("bias")
        if bias is not None:
            y = y + bias.reshape(1, -1, 1, 1)
        return y

    def _op_linear(self, node: NodeSpec, x: np.ndarray,
                   result: InferenceResult) -> np.ndarray:
        y = x @ node.tensors["weight"].T
        bias = node.tensors.get("bias")
        return y + bias if bias is not None else y

    def _op_batchnorm2d(self, node: NodeSpec, x: np.ndarray,
                        result: InferenceResult) -> np.ndarray:
        scale, shift = ops.batchnorm_params(node.tensors,
                                            node.attrs["eps"])
        return ops.apply_batchnorm(x, scale, shift)

    def _op_relu(self, node, x, result):
        return ops.relu(x)

    def _op_relu6(self, node, x, result):
        return ops.relu6(x)

    def _op_silu(self, node, x, result):
        return ops.silu(x)

    def _op_max_pool2d(self, node, x, result):
        return ops.max_pool2d(x, node.attrs["kernel"],
                              node.attrs["stride"])

    def _op_avg_pool2d(self, node, x, result):
        return ops.avg_pool2d(x, node.attrs["kernel"],
                              node.attrs["stride"])

    def _op_global_avg_pool2d(self, node, x, result):
        return ops.global_avg_pool2d(x)

    def _op_flatten(self, node, x, result):
        return ops.flatten(x)

    def _op_identity(self, node, x, result):
        return x
