"""Inference engine over the deployment IR (the ONNX-Runtime stage).

Executes a :class:`~repro.runtime.graph.GraphModel` with a pluggable GEMM
backend:

* ``backend="numpy"`` -- fast integer reference;
* ``backend="mixgemm"`` -- the bit-exact u-engine simulator; per-layer
  cycle counts are collected so a deployment run doubles as a
  performance measurement (what the paper's FPGA runs produce).

Quantized layers replay the exact training-time arithmetic: activations
quantize per-tensor with the learned scale shipped in the graph, weights
per-channel with absmax scales recomputed from the shipped weights (the
same rule QAT trained against), zero-points are zero -- so the integer
pipeline reproduces the QAT forward bit for bit (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.gemm import GemmResult, MixGemm
from repro.nn.functional_quant import weight_absmax_scale
from repro.nn.im2col import conv_geometry, im2row, rows_to_nchw
from repro.quant.affine import QuantParams, quantize

from .graph import GraphError, GraphModel, NodeSpec

#: Blocking used by the simulator backend for runtime layers: small tiles
#: keep the event-driven engine fast on laptop-scale models.
_SIM_BLOCKING = BlockingParams(mc=16, nc=16, kc=64)


@dataclass
class LayerStats:
    """Per-quantized-layer execution record (mixgemm backend only)."""

    op: str
    config: str
    macs: int
    cycles: int

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0


@dataclass
class InferenceResult:
    """Output batch plus accumulated simulator statistics."""

    output: np.ndarray
    layer_stats: list[LayerStats] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(s.cycles for s in self.layer_stats)

    @property
    def total_macs(self) -> int:
        return sum(s.macs for s in self.layer_stats)

    def gops(self, freq_ghz: float = 1.2) -> float:
        if self.total_cycles == 0:
            return 0.0
        return 2.0 * self.total_macs / self.total_cycles * freq_ghz


class InferenceEngine:
    """Run a deployment graph on a chosen GEMM backend."""

    def __init__(self, graph: GraphModel, *,
                 backend: str = "numpy") -> None:
        if backend not in ("numpy", "mixgemm"):
            raise GraphError(f"unknown backend: {backend}")
        self.graph = graph
        self.backend = backend

    #: Ops consuming more than one upstream tensor.
    _BINARY_OPS = frozenset({"add", "channel_scale"})

    # -- public API ------------------------------------------------------------

    def run(self, x: np.ndarray) -> InferenceResult:
        """Execute the graph on a batch; NCHW for conv models.

        Nodes without explicit ``inputs`` consume the previous node's
        output (the Sequential chain); DAG graphs wire branches via node
        ids, with ``"input"`` naming the model input.
        """
        result = InferenceResult(output=np.asarray(x, dtype=np.float64))
        values: dict[str, np.ndarray] = {"input": result.output}
        prev = "input"
        for i, node in enumerate(self.graph):
            input_ids = node.inputs or [prev]
            try:
                arrays = [values[name] for name in input_ids]
            except KeyError as exc:
                raise GraphError(
                    f"node {node.op} references unknown tensor {exc}"
                ) from None
            out = self._dispatch(node, arrays, result)
            prev = node.id or f"n{i}"
            values[prev] = out
        result.output = values[prev]
        return result

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class ids for a batch (softmax-free argmax)."""
        return self.run(x).output.argmax(axis=1)

    # -- op implementations -------------------------------------------------------

    def _dispatch(self, node: NodeSpec, arrays: list[np.ndarray],
                  result: InferenceResult) -> np.ndarray:
        handler = getattr(self, f"_op_{node.op}", None)
        if handler is None:
            raise GraphError(f"unsupported op: {node.op}")
        if node.op in self._BINARY_OPS:
            if len(arrays) != 2:
                raise GraphError(
                    f"{node.op} needs exactly 2 inputs, got {len(arrays)}"
                )
            return handler(node, arrays, result)
        if len(arrays) != 1:
            raise GraphError(
                f"{node.op} takes one input, got {len(arrays)}"
            )
        return handler(node, arrays[0], result)

    # --- binary ops (DAG topologies) ---

    def _op_add(self, node: NodeSpec, arrays: list[np.ndarray],
                result: InferenceResult) -> np.ndarray:
        """Elementwise residual addition."""
        a, b = arrays
        if a.shape != b.shape:
            raise GraphError(
                f"add shape mismatch: {a.shape} vs {b.shape}"
            )
        return a + b

    def _op_channel_scale(self, node: NodeSpec,
                          arrays: list[np.ndarray],
                          result: InferenceResult) -> np.ndarray:
        """Squeeze-excite gating: NCHW features x (N, C) gates."""
        x, s = arrays
        if s.shape != x.shape[:2]:
            raise GraphError(
                f"channel_scale gates {s.shape} do not match "
                f"features {x.shape}"
            )
        return x * s[:, :, None, None]

    def _op_sigmoid(self, node, x, result):
        return 1.0 / (1.0 + np.exp(-x))

    # --- quantized linear algebra ---

    def _quant_qparams(self, node: NodeSpec
                       ) -> tuple[QuantParams, QuantParams]:
        attrs = node.attrs
        act_qp = QuantParams(
            scale=attrs["act_scale"], zero_point=0.0,
            bits=attrs["act_bits"], signed=attrs["act_signed"],
        )
        w = node.tensors["weight"]
        w_scale = weight_absmax_scale(w, attrs["weight_bits"],
                                      channel_axis=0)
        wgt_qp = QuantParams(
            scale=w_scale, zero_point=0.0,
            bits=attrs["weight_bits"], signed=True, axis=0,
        )
        return act_qp, wgt_qp

    def _integer_gemm(self, x_q: np.ndarray, w_q: np.ndarray,
                      act_bits: int, weight_bits: int,
                      act_signed: bool, result: InferenceResult,
                      op: str) -> np.ndarray:
        if self.backend == "numpy":
            return x_q @ w_q
        config = MixGemmConfig(
            bw_a=act_bits, bw_b=weight_bits,
            signed_a=act_signed, signed_b=True,
            blocking=_SIM_BLOCKING,
        )
        executor = MixGemm(config, emulate_datapath=False)
        gemm: GemmResult = executor.gemm(x_q, w_q)
        result.layer_stats.append(LayerStats(
            op=op, config=config.name, macs=gemm.macs, cycles=gemm.cycles,
        ))
        return gemm.c

    def _op_quant_linear(self, node: NodeSpec, x: np.ndarray,
                         result: InferenceResult) -> np.ndarray:
        act_qp, wgt_qp = self._quant_qparams(node)
        w = node.tensors["weight"]
        x_q = quantize(x, act_qp)
        w_q = quantize(w, wgt_qp)
        acc = self._integer_gemm(
            x_q, w_q.T, node.attrs["act_bits"], node.attrs["weight_bits"],
            node.attrs["act_signed"], result, "quant_linear",
        )
        y = acc.astype(np.float64) * (float(act_qp.scale) * wgt_qp.scale)
        bias = node.tensors.get("bias")
        return y + bias if bias is not None else y

    def _op_quant_conv2d(self, node: NodeSpec, x: np.ndarray,
                         result: InferenceResult) -> np.ndarray:
        act_qp, wgt_qp = self._quant_qparams(node)
        w = node.tensors["weight"]
        attrs = node.attrs
        geo = conv_geometry(x.shape, w.shape, attrs["stride"],
                            attrs["padding"], attrs["groups"])
        x_q = quantize(x, act_qp)
        w_q = quantize(w, wgt_qp)
        groups = attrs["groups"]
        cpg = geo.in_channels // groups
        fpg = geo.out_channels // groups
        outs = []
        for g in range(groups):
            rows = im2row(
                x_q[:, g * cpg:(g + 1) * cpg],
                geo.kernel_h, geo.kernel_w, attrs["stride"],
                attrs["padding"],
            )
            wg = w_q[g * fpg:(g + 1) * fpg].reshape(fpg, -1).T
            outs.append(self._integer_gemm(
                rows, wg, attrs["act_bits"], attrs["weight_bits"],
                attrs["act_signed"], result, "quant_conv2d",
            ))
        acc = np.concatenate(outs, axis=1)
        y = acc.astype(np.float64) * (float(act_qp.scale)
                                      * wgt_qp.scale[None, :])
        y = rows_to_nchw(y, geo.batch, geo.out_h, geo.out_w)
        bias = node.tensors.get("bias")
        if bias is not None:
            y = y + bias.reshape(1, -1, 1, 1)
        return y

    # --- float ops ---

    def _op_conv2d(self, node: NodeSpec, x: np.ndarray,
                   result: InferenceResult) -> np.ndarray:
        w = node.tensors["weight"]
        attrs = node.attrs
        geo = conv_geometry(x.shape, w.shape, attrs["stride"],
                            attrs["padding"], attrs["groups"])
        groups = attrs["groups"]
        cpg = geo.in_channels // groups
        fpg = geo.out_channels // groups
        outs = []
        for g in range(groups):
            rows = im2row(x[:, g * cpg:(g + 1) * cpg], geo.kernel_h,
                          geo.kernel_w, attrs["stride"], attrs["padding"])
            outs.append(rows @ w[g * fpg:(g + 1) * fpg].reshape(fpg, -1).T)
        y = rows_to_nchw(np.concatenate(outs, axis=1), geo.batch,
                         geo.out_h, geo.out_w)
        bias = node.tensors.get("bias")
        if bias is not None:
            y = y + bias.reshape(1, -1, 1, 1)
        return y

    def _op_linear(self, node: NodeSpec, x: np.ndarray,
                   result: InferenceResult) -> np.ndarray:
        y = x @ node.tensors["weight"].T
        bias = node.tensors.get("bias")
        return y + bias if bias is not None else y

    def _op_batchnorm2d(self, node: NodeSpec, x: np.ndarray,
                        result: InferenceResult) -> np.ndarray:
        t = node.tensors
        std = np.sqrt(t["running_var"] + node.attrs["eps"])
        scale = (t["gamma"] / std).reshape(1, -1, 1, 1)
        shift = (t["beta"] - t["gamma"] * t["running_mean"] / std
                 ).reshape(1, -1, 1, 1)
        return x * scale + shift

    def _op_relu(self, node, x, result):
        return np.maximum(x, 0.0)

    def _op_relu6(self, node, x, result):
        return np.clip(x, 0.0, 6.0)

    def _op_silu(self, node, x, result):
        return x / (1.0 + np.exp(-x))

    def _pool(self, x, kernel, stride, reducer):
        n, c, h, w = x.shape
        oh = (h - kernel) // stride + 1
        ow = (w - kernel) // stride + 1
        sn, sc, sh, sw = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x, shape=(n, c, oh, ow, kernel, kernel),
            strides=(sn, sc, sh * stride, sw * stride, sh, sw),
            writeable=False,
        )
        return reducer(windows, axis=(-2, -1))

    def _op_max_pool2d(self, node, x, result):
        return self._pool(x, node.attrs["kernel"], node.attrs["stride"],
                          np.max)

    def _op_avg_pool2d(self, node, x, result):
        return self._pool(x, node.attrs["kernel"], node.attrs["stride"],
                          np.mean)

    def _op_global_avg_pool2d(self, node, x, result):
        return x.mean(axis=(2, 3))

    def _op_flatten(self, node, x, result):
        return x.reshape(x.shape[0], -1)

    def _op_identity(self, node, x, result):
        return x
