"""Overload protection for the serving runtime: admission + breaker.

The ROADMAP's million-user story needs *graceful degradation*, not just
concurrency: an unbounded request queue turns sustained overload into
unbounded memory growth and unbounded latency, and a faulty datapath
turns every batch into a retry storm.  This module supplies the two
mechanisms :class:`~repro.runtime.serving.BatchedServer` composes:

* :class:`AdmissionQueue` -- a **bounded** request queue with a
  configurable full-queue policy:

  - ``"block"``: the submitting thread waits up to a timeout for a
    slot, then receives a structured
    :class:`~repro.robustness.errors.OverloadError` (reason
    ``admission-timeout``);
  - ``"reject"``: a full queue refuses immediately (``queue-full``) --
    the right policy for latency-sensitive clients that would rather
    retry elsewhere than wait;
  - ``"shed-oldest"``: the oldest queued request is evicted (its future
    resolves with reason ``shed``) and the new one admitted -- the
    right policy when fresh requests are worth more than stale ones
    (their deadlines are further away).

* :class:`CircuitBreaker` -- a closed / open / half-open state machine
  over per-batch fault observations.  Repeated guarded-run failures
  (shadow-verification mismatches, guard trips) open the circuit; while
  open, the server degrades batches to the clean numpy reference
  backend instead of burning retries in the simulated datapath.  After
  an exponentially backed-off cooldown a single half-open *probe* batch
  tests the primary backend again; a clean probe closes the circuit.

Both classes are annotated for ``repro check --concurrency`` and traced
by the runtime lock sanitizer: the breaker's mutable state is guarded
by a factory lock, and the admission queue delegates its synchronization
to ``queue.Queue`` (whose bound the REP009 lint rule enforces for every
queue constructed under ``runtime/``).
"""

from __future__ import annotations

import queue
import time
from typing import Any, Callable, Optional

from repro.core.locks import make_lock
from repro.robustness.errors import OverloadError
from repro.robustness.recovery import BreakerPolicy

#: Full-queue policies :class:`AdmissionQueue` understands.
ADMISSION_POLICIES = ("block", "reject", "shed-oldest")

#: Routing decisions :meth:`CircuitBreaker.route` can return.
BREAKER_ROUTES = ("primary", "reference", "probe")


class AdmissionQueue:
    """Bounded FIFO with an explicit full-queue admission policy.

    Thin, policy-bearing wrapper around ``queue.Queue(maxsize=...)`` --
    the underlying queue supplies the locking, this class supplies the
    decision of *what happens when the bound is hit*.  ``on_shed`` is
    invoked (from the submitting thread) with every item the
    ``shed-oldest`` policy evicts; the caller owns resolving that
    item's future.  ``sentinel`` identifies the shutdown marker so an
    eviction can never swallow it.
    """

    def __init__(self, capacity: int, *, policy: str = "block",
                 timeout_s: float = 1.0,
                 on_shed: Optional[Callable[[Any], None]] = None,
                 sentinel: Any = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; choose from "
                f"{ADMISSION_POLICIES}")
        if timeout_s < 0:
            raise ValueError(f"timeout_s must be >= 0, got {timeout_s}")
        self.capacity = capacity
        self.policy = policy
        self.timeout_s = timeout_s
        self._on_shed = on_shed
        self._sentinel = sentinel
        self._q: queue.Queue = queue.Queue(maxsize=capacity)

    def put(self, item: Any) -> None:
        """Admit ``item`` or raise :class:`OverloadError` per policy."""
        if self.policy == "reject":
            try:
                self._q.put_nowait(item)
            except queue.Full:
                raise OverloadError(
                    f"request rejected: admission queue is full "
                    f"({self.capacity} queued)",
                    reason="queue-full",
                    queue_depth=self.capacity) from None
            return
        if self.policy == "block":
            try:
                self._q.put(item, timeout=self.timeout_s)
            except queue.Full:
                raise OverloadError(
                    f"request timed out after {self.timeout_s * 1000:.0f}"
                    f" ms waiting for a queue slot "
                    f"({self.capacity} queued)",
                    reason="admission-timeout",
                    queue_depth=self.capacity) from None
            return
        # shed-oldest: evict from the head until the new item fits.
        while True:
            try:
                self._q.put_nowait(item)
                return
            except queue.Full:
                pass
            try:
                oldest = self._q.get_nowait()
            except queue.Empty:
                continue  # raced another producer; retry the put
            if oldest is self._sentinel and self._sentinel is not None:
                # Never evict the shutdown marker: put it back (we just
                # freed its slot) and refuse the late submission.
                self._q.put_nowait(oldest)
                raise OverloadError(
                    "request raced server shutdown", reason="closed",
                    queue_depth=self.qsize())
            if self._on_shed is not None:
                self._on_shed(oldest)

    def put_sentinel(self, item: Any) -> None:
        """Enqueue the shutdown marker, waiting for a slot if needed.

        The consumer is guaranteed to be draining (it only exits after
        seeing the sentinel), so an unbounded wait here always ends.
        """
        self._q.put(item)

    def get(self, timeout: Optional[float] = None) -> Any:
        """Pop the next item; raises ``queue.Empty`` on timeout."""
        if timeout is None:
            return self._q.get()
        return self._q.get(timeout=timeout)

    def get_nowait(self) -> Any:
        return self._q.get_nowait()

    def qsize(self) -> int:
        return self._q.qsize()


class CircuitBreaker:
    """Closed / open / half-open breaker over batch fault observations.

    ``route()`` is consulted once per batch and returns where to run it
    (``primary`` backend, degraded ``reference`` backend, or a
    half-open ``probe`` of the primary); ``record()`` feeds back whether
    the batch's inference run reported fault events.  All state
    transitions happen under one factory lock so worker threads can
    consult the breaker concurrently; ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(self, policy: Optional[BreakerPolicy] = None, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._lock = make_lock("CircuitBreaker._lock")
        self._state = "closed"      # repro: guarded-by(_lock)
        self._failures = 0          # repro: guarded-by(_lock)
        self._trips = 0             # repro: guarded-by(_lock)
        self._cooldown_s = self.policy.cooldown_s  # repro: guarded-by(_lock)
        self._opened_at = 0.0       # repro: guarded-by(_lock)
        self._probing = False       # repro: guarded-by(_lock)

    # -- routing --------------------------------------------------------------

    def route(self) -> str:
        """Decide where the next batch runs (one of BREAKER_ROUTES)."""
        with self._lock:
            if self._state == "closed":
                return "primary"
            if (self._state == "open"
                    and self._clock() - self._opened_at
                    >= self._cooldown_s):
                self._state = "half-open"
            if self._state == "half-open" and not self._probing:
                self._probing = True
                return "probe"
            return "reference"

    def record(self, faulty: bool, *, probe: bool = False) -> None:
        """Feed back one batch outcome (``probe`` for probe batches)."""
        with self._lock:
            if probe:
                self._probing = False
                if faulty:
                    self._trip()
                else:
                    self._state = "closed"
                    self._failures = 0
                    self._cooldown_s = self.policy.cooldown_s
                return
            if not faulty:
                self._failures = 0
                return
            self._failures += 1
            if (self._state == "closed"
                    and self._failures >= self.policy.failure_threshold):
                self._trip()

    def cancel_probe(self) -> None:
        """Release the half-open probe slot without an observation
        (the probe batch was shed before it could execute)."""
        with self._lock:
            self._probing = False

    def _trip(self) -> None:
        """Open the circuit; repeated trips back the cooldown off
        exponentially.  Callers hold ``_lock``."""
        if self._trips > 0:
            self._cooldown_s = min(
                self._cooldown_s * self.policy.backoff,
                self.policy.max_cooldown_s)
        self._trips += 1
        self._failures = 0
        self._state = "open"
        self._opened_at = self._clock()

    # -- observability --------------------------------------------------------

    def state(self) -> str:
        """Current state, advancing ``open -> half-open`` on cooldown
        expiry so observers see what ``route()`` would act on."""
        with self._lock:
            if (self._state == "open"
                    and self._clock() - self._opened_at
                    >= self._cooldown_s):
                self._state = "half-open"
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def snapshot(self) -> dict:
        """Structured view for stats/CLI reporting."""
        with self._lock:
            return {
                "state": self._state,
                "trips": self._trips,
                "consecutive_failures": self._failures,
                "cooldown_s": self._cooldown_s,
            }


__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionQueue",
    "BREAKER_ROUTES",
    "BreakerPolicy",
    "CircuitBreaker",
    "OverloadError",
]
