"""Deployment graph IR (the paper's ONNX stage, Figure 3).

The paper's workflow exports the QAT-trained PyTorch model to ONNX and
runs it through ONNX Runtime with Mix-GEMM as the BLAS backend.  This
module is the offline-equivalent: a declarative operator graph with JSON
serialization.  :func:`export_sequential` converts a trained
:class:`~repro.nn.layers.Sequential` model (quant layers included --
weights, bitwidths and learned activation scales travel with the graph);
the :mod:`repro.runtime.engine` then executes it on a chosen backend.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    QuantConv2d,
    QuantLinear,
    ReLU,
    ReLU6,
    Sequential,
    SiLU,
)

FORMAT_VERSION = 1


class GraphError(ValueError):
    """Raised for malformed graphs or unsupported layers."""


@dataclass
class NodeSpec:
    """One operator: a type tag, attributes, and optional tensors.

    ``inputs`` wires the dataflow graph: a list of producer node ids (or
    the reserved name ``"input"`` for the model input).  When empty, the
    node implicitly consumes the previous node's output -- the linear
    chain :func:`export_sequential` emits.  ``id`` names this node's
    output; when empty the engine assigns ``n<i>``.
    """

    op: str
    attrs: dict[str, Any] = field(default_factory=dict)
    tensors: dict[str, np.ndarray] = field(default_factory=dict)
    inputs: list[str] = field(default_factory=list)
    id: str = ""

    def to_json(self) -> dict:
        payload = {
            "op": self.op,
            "attrs": self.attrs,
            "tensors": {
                name: {"shape": list(t.shape), "data": t.ravel().tolist()}
                for name, t in self.tensors.items()
            },
        }
        if self.inputs:
            payload["inputs"] = self.inputs
        if self.id:
            payload["id"] = self.id
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "NodeSpec":
        tensors = {
            name: np.asarray(spec["data"],
                             dtype=np.float64).reshape(spec["shape"])
            for name, spec in payload.get("tensors", {}).items()
        }
        return cls(op=payload["op"], attrs=dict(payload.get("attrs", {})),
                   tensors=tensors,
                   inputs=list(payload.get("inputs", [])),
                   id=payload.get("id", ""))


@dataclass
class GraphModel:
    """A linear operator graph plus metadata."""

    nodes: list[NodeSpec] = field(default_factory=list)
    name: str = "model"

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def to_json(self) -> str:
        return json.dumps({
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "nodes": [n.to_json() for n in self.nodes],
        })

    @classmethod
    def from_json(cls, text: str) -> "GraphModel":
        payload = json.loads(text)
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise GraphError(f"unsupported model format version {version}")
        return cls(
            nodes=[NodeSpec.from_json(n) for n in payload["nodes"]],
            name=payload.get("name", "model"),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "GraphModel":
        with open(path) as f:
            return cls.from_json(f.read())

    def quantized_nodes(self) -> list[NodeSpec]:
        return [n for n in self.nodes
                if n.op in ("quant_conv2d", "quant_linear")]


def _quant_attrs(layer) -> dict[str, Any]:
    spec = layer.spec
    attrs: dict[str, Any] = {
        "act_bits": spec.act_bits,
        "weight_bits": spec.weight_bits,
        "act_signed": spec.act_signed,
    }
    if spec.act_bits is not None:
        attrs["act_scale"] = float(np.exp(layer.act_log_scale.data))
    return attrs


def _export_layer(layer) -> NodeSpec:
    # Order matters: quant subclasses before their float bases.
    if isinstance(layer, QuantConv2d):
        node = NodeSpec(op="quant_conv2d", attrs={
            "stride": layer.stride, "padding": layer.padding,
            "groups": layer.groups, **_quant_attrs(layer),
        })
        node.tensors["weight"] = layer.weight.data.copy()
        if layer.bias is not None:
            node.tensors["bias"] = layer.bias.data.copy()
        return node
    if isinstance(layer, QuantLinear):
        node = NodeSpec(op="quant_linear", attrs=_quant_attrs(layer))
        node.tensors["weight"] = layer.weight.data.copy()
        if layer.bias is not None:
            node.tensors["bias"] = layer.bias.data.copy()
        return node
    if isinstance(layer, Conv2d):
        node = NodeSpec(op="conv2d", attrs={
            "stride": layer.stride, "padding": layer.padding,
            "groups": layer.groups,
        })
        node.tensors["weight"] = layer.weight.data.copy()
        if layer.bias is not None:
            node.tensors["bias"] = layer.bias.data.copy()
        return node
    if isinstance(layer, Linear):
        node = NodeSpec(op="linear")
        node.tensors["weight"] = layer.weight.data.copy()
        if layer.bias is not None:
            node.tensors["bias"] = layer.bias.data.copy()
        return node
    if isinstance(layer, BatchNorm2d):
        node = NodeSpec(op="batchnorm2d", attrs={"eps": layer.eps})
        node.tensors["gamma"] = layer.gamma.data.copy()
        node.tensors["beta"] = layer.beta.data.copy()
        node.tensors["running_mean"] = layer.running_mean.copy()
        node.tensors["running_var"] = layer.running_var.copy()
        return node
    if isinstance(layer, ReLU6):
        return NodeSpec(op="relu6")
    if isinstance(layer, ReLU):
        return NodeSpec(op="relu")
    if isinstance(layer, SiLU):
        return NodeSpec(op="silu")
    if isinstance(layer, MaxPool2d):
        return NodeSpec(op="max_pool2d", attrs={
            "kernel": layer.kernel_size, "stride": layer.stride,
        })
    if isinstance(layer, AvgPool2d):
        return NodeSpec(op="avg_pool2d", attrs={
            "kernel": layer.kernel_size, "stride": layer.stride,
        })
    if isinstance(layer, GlobalAvgPool2d):
        return NodeSpec(op="global_avg_pool2d")
    if isinstance(layer, Flatten):
        return NodeSpec(op="flatten")
    if isinstance(layer, Identity):
        return NodeSpec(op="identity")
    raise GraphError(
        f"cannot export layer of type {type(layer).__name__}; "
        f"export supports Sequential models of standard layers"
    )


def export_sequential(model: Sequential, name: str = "model") -> GraphModel:
    """Export a trained Sequential model to the deployment IR."""
    if not isinstance(model, Sequential):
        raise GraphError("export_sequential expects a Sequential model")
    return GraphModel(
        nodes=[_export_layer(layer) for layer in model],
        name=name,
    )


class GraphBuilder:
    """Imperative construction of DAG-shaped deployment graphs.

    Residual and squeeze-excite topologies need explicit wiring; the
    builder hands out node ids so branches can reference each other::

        b = GraphBuilder("resnet-block")
        trunk = b.add(conv_node, inputs=["input"])
        trunk = b.add(NodeSpec(op="relu"), inputs=[trunk])
        out = b.add(NodeSpec(op="add"), inputs=[trunk, "input"])
    """

    def __init__(self, name: str = "model") -> None:
        self._graph = GraphModel(name=name)
        self._counter = 0

    def add(self, node: NodeSpec,
            inputs: list[str] | None = None) -> str:
        """Append a node; returns its output id."""
        if inputs is not None:
            node.inputs = list(inputs)
        if not node.id:
            node.id = f"n{self._counter}"
        self._counter += 1
        self._graph.nodes.append(node)
        return node.id

    def build(self) -> GraphModel:
        return self._graph
