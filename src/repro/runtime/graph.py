"""Deployment graph IR (the paper's ONNX stage, Figure 3).

The paper's workflow exports the QAT-trained PyTorch model to ONNX and
runs it through ONNX Runtime with Mix-GEMM as the BLAS backend.  This
module is the offline-equivalent: a declarative operator graph with JSON
serialization.  :func:`export_sequential` converts a trained
:class:`~repro.nn.layers.Sequential` model (quant layers included --
weights, bitwidths and learned activation scales travel with the graph);
the :mod:`repro.runtime.engine` then executes it on a chosen backend.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.core.binseg import SUPPORTED_BITWIDTHS
from repro.core.errors import ReproError
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    QuantConv2d,
    QuantLinear,
    ReLU,
    ReLU6,
    Sequential,
    SiLU,
)

FORMAT_VERSION = 1


class GraphError(ReproError, ValueError):
    """Raised for malformed graphs or unsupported layers."""


#: Ops whose attrs carry quantization metadata that must be validated.
_QUANT_OPS = frozenset({"quant_conv2d", "quant_linear"})

#: Every operator the inference engine implements.  The static graph
#: contract checker rejects anything outside this set before a run is
#: ever attempted; keep in sync with the ``_op_*`` methods of
#: :class:`repro.runtime.engine.InferenceEngine` (asserted by tests).
SUPPORTED_OPS = frozenset({
    "add", "avg_pool2d", "batchnorm2d", "channel_scale", "conv2d",
    "flatten", "global_avg_pool2d", "identity", "linear", "max_pool2d",
    "quant_conv2d", "quant_linear", "relu", "relu6", "sigmoid", "silu",
})


def _load_tensor(name: str, spec: Any) -> np.ndarray:
    """Decode one serialized tensor, validating shape against payload."""
    if not isinstance(spec, dict) or "shape" not in spec or "data" not in spec:
        raise GraphError(
            f"tensor {name!r} must be a dict with 'shape' and 'data'"
        )
    shape = spec["shape"]
    if (not isinstance(shape, (list, tuple))
            or not all(isinstance(d, int) and d >= 0 for d in shape)):
        raise GraphError(f"tensor {name!r} has malformed shape {shape!r}")
    try:
        flat = np.asarray(spec["data"], dtype=np.float64).ravel()
    except (TypeError, ValueError) as exc:
        raise GraphError(f"tensor {name!r} holds non-numeric data: {exc}"
                         ) from None
    expected = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if flat.size != expected:
        raise GraphError(
            f"tensor {name!r} has {flat.size} elements but shape "
            f"{list(shape)} needs {expected}"
        )
    if not np.all(np.isfinite(flat)):
        raise GraphError(f"tensor {name!r} contains non-finite values")
    return flat.reshape(shape)


def _validate_quant_attrs(op: str, attrs: dict[str, Any]) -> None:
    """Reject quantization metadata the runtime cannot execute."""
    for key in ("act_bits", "weight_bits"):
        bits = attrs.get(key)
        if bits is None:
            continue
        if not isinstance(bits, int) or bits not in SUPPORTED_BITWIDTHS:
            raise GraphError(
                f"{op}: {key}={bits!r} outside the supported "
                f"{SUPPORTED_BITWIDTHS[0]}-{SUPPORTED_BITWIDTHS[-1]} "
                f"bit range"
            )
    scale = attrs.get("act_scale")
    if scale is not None:
        if (not isinstance(scale, (int, float))
                or not math.isfinite(scale) or scale <= 0):
            raise GraphError(
                f"{op}: act_scale={scale!r} must be a finite positive number"
            )


@dataclass
class NodeSpec:
    """One operator: a type tag, attributes, and optional tensors.

    ``inputs`` wires the dataflow graph: a list of producer node ids (or
    the reserved name ``"input"`` for the model input).  When empty, the
    node implicitly consumes the previous node's output -- the linear
    chain :func:`export_sequential` emits.  ``id`` names this node's
    output; when empty the engine assigns ``n<i>``.
    """

    op: str
    attrs: dict[str, Any] = field(default_factory=dict)
    tensors: dict[str, np.ndarray] = field(default_factory=dict)
    inputs: list[str] = field(default_factory=list)
    id: str = ""

    def to_json(self) -> dict:
        payload = {
            "op": self.op,
            "attrs": self.attrs,
            "tensors": {
                name: {"shape": list(t.shape), "data": t.ravel().tolist()}
                for name, t in self.tensors.items()
            },
        }
        if self.inputs:
            payload["inputs"] = self.inputs
        if self.id:
            payload["id"] = self.id
        return payload

    # -- static metadata (consumed by repro.analysis, no execution) --------

    def gemm_k(self) -> Optional[int]:
        """Inner-product depth K of this node's im2col-lowered GEMM.

        ``quant_conv2d`` lowers to a GEMM whose K is
        ``(in_channels / groups) * kh * kw``; ``quant_linear``'s K is its
        input feature count.  ``None`` for non-GEMM ops or when the
        weight tensor is missing/malformed -- the graph contract reports
        those separately.
        """
        weight = self.tensors.get("weight")
        if weight is None:
            return None
        if self.op in ("quant_conv2d", "conv2d") and weight.ndim == 4:
            return int(weight.shape[1] * weight.shape[2] * weight.shape[3])
        if self.op in ("quant_linear", "linear") and weight.ndim == 2:
            return int(weight.shape[1])
        return None

    def out_channels(self) -> Optional[int]:
        """Channel (or feature) count this node produces, if derivable."""
        weight = self.tensors.get("weight")
        if weight is not None and self.op in (
                "quant_conv2d", "conv2d", "quant_linear", "linear"):
            return int(weight.shape[0])
        if self.op == "batchnorm2d" and "gamma" in self.tensors:
            return int(self.tensors["gamma"].size)
        return None

    @classmethod
    def from_json(cls, payload: dict) -> "NodeSpec":
        if not isinstance(payload, dict):
            raise GraphError(f"node payload must be a dict, got "
                             f"{type(payload).__name__}")
        op = payload.get("op")
        if not isinstance(op, str) or not op:
            raise GraphError("node payload is missing its 'op' string")
        tensors_spec = payload.get("tensors", {})
        if not isinstance(tensors_spec, dict):
            raise GraphError(f"{op}: 'tensors' must be a dict")
        tensors = {
            name: _load_tensor(name, spec)
            for name, spec in tensors_spec.items()
        }
        attrs = dict(payload.get("attrs", {}))
        if op in _QUANT_OPS:
            _validate_quant_attrs(op, attrs)
        return cls(op=op, attrs=attrs, tensors=tensors,
                   inputs=list(payload.get("inputs", [])),
                   id=payload.get("id", ""))


@dataclass
class GraphModel:
    """A linear operator graph plus metadata."""

    nodes: list[NodeSpec] = field(default_factory=list)
    name: str = "model"

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def to_json(self) -> str:
        return json.dumps({
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "nodes": [n.to_json() for n in self.nodes],
        })

    @classmethod
    def from_json(cls, text: str) -> "GraphModel":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise GraphError(f"model file is not valid JSON: {exc}"
                             ) from None
        if not isinstance(payload, dict):
            raise GraphError("model payload must be a JSON object")
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise GraphError(f"unsupported model format version {version}")
        nodes = payload.get("nodes")
        if not isinstance(nodes, list):
            raise GraphError("model payload needs a 'nodes' list")
        return cls(
            nodes=[NodeSpec.from_json(n) for n in nodes],
            name=payload.get("name", "model"),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "GraphModel":
        with open(path) as f:
            return cls.from_json(f.read())

    def quantized_nodes(self) -> list[NodeSpec]:
        return [n for n in self.nodes
                if n.op in ("quant_conv2d", "quant_linear")]

    def effective_ids(self) -> list[str]:
        """Node output ids exactly as the engine assigns them at run time
        (explicit ``id`` or the positional ``n<i>`` default)."""
        return [n.id or f"n{i}" for i, n in enumerate(self.nodes)]


def _quant_attrs(layer) -> dict[str, Any]:
    spec = layer.spec
    attrs: dict[str, Any] = {
        "act_bits": spec.act_bits,
        "weight_bits": spec.weight_bits,
        "act_signed": spec.act_signed,
    }
    if spec.act_bits is not None:
        attrs["act_scale"] = float(np.exp(layer.act_log_scale.data))
    return attrs


def _export_layer(layer) -> NodeSpec:
    # Order matters: quant subclasses before their float bases.
    if isinstance(layer, QuantConv2d):
        node = NodeSpec(op="quant_conv2d", attrs={
            "stride": layer.stride, "padding": layer.padding,
            "groups": layer.groups, **_quant_attrs(layer),
        })
        node.tensors["weight"] = layer.weight.data.copy()
        if layer.bias is not None:
            node.tensors["bias"] = layer.bias.data.copy()
        return node
    if isinstance(layer, QuantLinear):
        node = NodeSpec(op="quant_linear", attrs=_quant_attrs(layer))
        node.tensors["weight"] = layer.weight.data.copy()
        if layer.bias is not None:
            node.tensors["bias"] = layer.bias.data.copy()
        return node
    if isinstance(layer, Conv2d):
        node = NodeSpec(op="conv2d", attrs={
            "stride": layer.stride, "padding": layer.padding,
            "groups": layer.groups,
        })
        node.tensors["weight"] = layer.weight.data.copy()
        if layer.bias is not None:
            node.tensors["bias"] = layer.bias.data.copy()
        return node
    if isinstance(layer, Linear):
        node = NodeSpec(op="linear")
        node.tensors["weight"] = layer.weight.data.copy()
        if layer.bias is not None:
            node.tensors["bias"] = layer.bias.data.copy()
        return node
    if isinstance(layer, BatchNorm2d):
        node = NodeSpec(op="batchnorm2d", attrs={"eps": layer.eps})
        node.tensors["gamma"] = layer.gamma.data.copy()
        node.tensors["beta"] = layer.beta.data.copy()
        node.tensors["running_mean"] = layer.running_mean.copy()
        node.tensors["running_var"] = layer.running_var.copy()
        return node
    if isinstance(layer, ReLU6):
        return NodeSpec(op="relu6")
    if isinstance(layer, ReLU):
        return NodeSpec(op="relu")
    if isinstance(layer, SiLU):
        return NodeSpec(op="silu")
    if isinstance(layer, MaxPool2d):
        return NodeSpec(op="max_pool2d", attrs={
            "kernel": layer.kernel_size, "stride": layer.stride,
        })
    if isinstance(layer, AvgPool2d):
        return NodeSpec(op="avg_pool2d", attrs={
            "kernel": layer.kernel_size, "stride": layer.stride,
        })
    if isinstance(layer, GlobalAvgPool2d):
        return NodeSpec(op="global_avg_pool2d")
    if isinstance(layer, Flatten):
        return NodeSpec(op="flatten")
    if isinstance(layer, Identity):
        return NodeSpec(op="identity")
    raise GraphError(
        f"cannot export layer of type {type(layer).__name__}; "
        f"export supports Sequential models of standard layers"
    )


def export_sequential(model: Sequential, name: str = "model") -> GraphModel:
    """Export a trained Sequential model to the deployment IR."""
    if not isinstance(model, Sequential):
        raise GraphError("export_sequential expects a Sequential model")
    return GraphModel(
        nodes=[_export_layer(layer) for layer in model],
        name=name,
    )


class GraphBuilder:
    """Imperative construction of DAG-shaped deployment graphs.

    Residual and squeeze-excite topologies need explicit wiring; the
    builder hands out node ids so branches can reference each other::

        b = GraphBuilder("resnet-block")
        trunk = b.add(conv_node, inputs=["input"])
        trunk = b.add(NodeSpec(op="relu"), inputs=[trunk])
        out = b.add(NodeSpec(op="add"), inputs=[trunk, "input"])
    """

    def __init__(self, name: str = "model") -> None:
        self._graph = GraphModel(name=name)
        self._counter = 0

    def add(self, node: NodeSpec,
            inputs: list[str] | None = None) -> str:
        """Append a node; returns its output id."""
        if inputs is not None:
            node.inputs = list(inputs)
        if not node.id:
            node.id = f"n{self._counter}"
        self._counter += 1
        self._graph.nodes.append(node)
        return node.id

    def build(self) -> GraphModel:
        return self._graph
