"""Asyncio-native front end for :class:`~repro.runtime.serving.BatchedServer`.

One event loop driving thousands of concurrent requests is the client
shape the ROADMAP's async-API open item asks for.  The server side may
be thread-based (:class:`BatchedServer`: numpy kernels release the GIL;
the batcher and worker pool are threads) or process-sharded
(:class:`~repro.runtime.sharding.ShardedServer`: worker processes on a
zero-copy shared-memory plan).  The client works with either unchanged
because it only touches the public ``submit()`` surface -- the
dispatcher thread pool, pipes, and shared segments stay server-side --
so its job is purely to bridge:

* ``submit()`` runs the server's (possibly blocking, under the
  ``block`` admission policy) enqueue on the default executor so the
  event loop never stalls on admission control, then awaits the
  resulting ``concurrent.futures.Future`` via ``asyncio.wrap_future``;
* a bounded ``asyncio.Semaphore`` caps in-flight requests per client --
  local backpressure *in front of* the server's admission queue, so a
  single greedy coroutine spray cannot monopolize the shared bound;
* task cancellation maps to shedding: cancelling an awaiting coroutine
  cancels the underlying server future, and the batcher/worker drops
  the request via ``set_running_or_notify_cancel`` without wasting a
  GEMM slot.

The client holds no locks and no mutable shared state beyond the
semaphore (event-loop confined), so it needs no concurrency
annotations; overload pressure surfaces as the same structured
:class:`~repro.robustness.errors.OverloadError` the sync API raises.
"""

from __future__ import annotations

import asyncio
import functools
from typing import Optional, Sequence

import numpy as np

from repro.robustness.errors import OverloadError

from .serving import BatchedServer, ServedResponse


class AsyncInferenceClient:
    """Async facade over one :class:`BatchedServer`.

    Parameters
    ----------
    server:
        The (already running) server to drive.  The client does not own
        it: closing the client does not close the server, so several
        clients (or sync callers) can share one deployment.
    max_in_flight:
        Bound on concurrently awaited requests through *this* client.
        Submissions past the bound wait on the semaphore -- cheap
        event-loop suspension, not thread blocking.
    """

    def __init__(self, server: BatchedServer, *,
                 max_in_flight: int = 64) -> None:
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}")
        self.server = server
        self.max_in_flight = max_in_flight
        self._sem = asyncio.Semaphore(max_in_flight)

    async def submit(self, x: np.ndarray, *,
                     deadline_ms: Optional[float] = None,
                     ) -> ServedResponse:
        """Submit one sample and await its :class:`ServedResponse`.

        Raises :class:`OverloadError` when the request is rejected,
        times out at admission, or is shed (deadline / shed-oldest /
        shutdown).  Cancelling the awaiting task cancels the request
        server-side.
        """
        async with self._sem:
            loop = asyncio.get_running_loop()
            # submit() can block (admission policy "block"), so it runs
            # on the default executor, off the event loop.
            future = await loop.run_in_executor(
                None, functools.partial(self.server.submit, x,
                                        deadline_ms=deadline_ms))
            try:
                return await asyncio.wrap_future(future)
            except asyncio.CancelledError:
                # Map coroutine cancellation to server-side shedding:
                # if the request has not started executing, the worker
                # will drop it without spending a GEMM slot.
                future.cancel()
                raise

    async def map(self, inputs: Sequence[np.ndarray], *,
                  deadline_ms: Optional[float] = None,
                  tolerate_overload: bool = False,
                  ) -> list[ServedResponse | OverloadError]:
        """Drive many samples concurrently (bounded by the semaphore).

        Returns results in input order.  With ``tolerate_overload``
        each shed/rejected request yields its :class:`OverloadError`
        in-place instead of failing the whole gather.
        """
        tasks = [asyncio.ensure_future(
            self.submit(x, deadline_ms=deadline_ms)) for x in inputs]
        gathered = await asyncio.gather(*tasks, return_exceptions=True)
        results: list[ServedResponse | OverloadError] = []
        for item in gathered:
            if isinstance(item, OverloadError):
                if not tolerate_overload:
                    raise item
                results.append(item)
            elif isinstance(item, BaseException):
                raise item
            else:
                results.append(item)
        return results


__all__ = ["AsyncInferenceClient"]
