"""Ahead-of-time compilation of deployment graphs (the paper's AOT stage).

The uncompiled :class:`~repro.runtime.engine.InferenceEngine` pays graph
overhead on **every** ``run()`` call: static weights are re-quantized,
per-channel absmax scales recomputed, conv geometry re-derived, operand
matrices re-validated and a fresh :class:`~repro.core.gemm.MixGemm`
executor built per GEMM.  That is the right shape for a debugger and for
the hardened/fault-injection paths (which must observe the per-call
pipeline), but it turns steady-state serving into a metadata benchmark.
The BLIS lineage Mix-GEMM builds on amortizes exactly this work: packing
and layout decisions happen once per deployment, the hot loop is pure
arithmetic.

:func:`compile_graph` performs that amortization once and returns a
:class:`GraphPlan`:

* static weights are quantized once and their per-channel scales cached;
* ``batchnorm2d`` nodes whose sole input is a preceding conv become part
  of that conv's epilogue (the BN ``scale``/``shift`` arrays are
  precomputed constants), and elementwise ``relu``/``relu6`` nodes fuse
  into the producing step's epilogue;
* conv lowering state (output geometry, the padded scratch buffer) is
  cached per input shape, replacing the per-call ``np.pad``;
* event-backend weight panels are pre-packed into the shared
  :class:`~repro.core.packcache.PackingCache`, and one reusable
  executor is bound per (config, layer) instead of one per call;
* fast-backend weight operands are validated, split into kc-blocks and
  pre-cast once, with per-call cycles served by the memoized
  :func:`~repro.core.fastpath.fastpath_timing` oracle.

Bit-exactness is a design invariant, not an aspiration: every float
operation the plan executes is the *same numpy expression in the same
order* as the uncompiled engine (shared kernels live in
:mod:`repro.runtime.ops`), the integer GEMM path reproduces
:func:`~repro.core.fastpath.run_fastpath` block by block, and the
BN/activation "fusion" hoists only *constant computation* -- the
per-element float sequence is untouched.  ``tests/runtime/test_plan.py``
asserts equality (outputs and per-layer cycles), never closeness.

Plans hold per-call scratch state (lowering buffers, bound executors)
and are therefore **not** thread-safe; the batched server in
:mod:`repro.runtime.serving` gives each worker its own plan and shares
only the (locked) packing cache.

Zero-copy plan sharing
----------------------
Every constant array a plan bakes in (prepacked kc-blocks, folded BN
``scale``/``shift``, output scales, biases, float panels) is immutable
after :func:`compile_graph` returns.  :func:`export_plan` serializes
them once into a single ``multiprocessing.shared_memory`` segment and
rebinds the plan's arrays to **read-only views** of that segment;
:func:`attach_plan` rebuilds the plan in another process directly on
the shared buffers, so N worker processes hold one copy of the
weights.  The manifest carries a
:meth:`~repro.core.packcache.PackingCache.fingerprint` per array, and
attach verifies both the segment payload and the locally recompiled
arrays against it -- a tampered or stale segment is rejected before a
single inference runs (post-attach tampering is caught by the plan-
equivalence verifier, ``repro check --verify-plan``).  Lifecycle: the
exporting process owns the segment and must ``close()`` **and**
``unlink()`` it; attached processes only ever ``close()`` their
mapping (lint rule REP011 enforces the pairing under ``runtime/``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Callable, Iterator, Optional

import numpy as np

from repro.core.errors import ReproError

from repro.core.backend import resolve_backend
from repro.core.binseg import value_range
from repro.core.config import (
    ACCMEM_CONTAINER_BITS,
    BlockingParams,
    DEFAULT_ACCMEM_BITS,
    EXECUTION_BACKENDS,
    MixGemmConfig,
)
from repro.core.fastpath import (
    _FLOAT64_EXACT,
    fastpath_applicable,
    fastpath_timing,
    wrap_signed_array,
)
from repro.core.gemm import KernelCosts, MixGemm
from repro.core.packcache import PackingCache
from repro.core.packing import _check_matrix, aligned_kc
from repro.nn.functional_quant import weight_absmax_scale
from repro.nn.im2col import rows_to_nchw
from repro.quant.affine import QuantParams, quantize

from . import ops
from .engine import SIM_BLOCKING, InferenceResult, LayerStats
from .graph import GraphError, GraphModel, NodeSpec
from .observe import observe_range


# -- bound GEMM executors -----------------------------------------------------


class _ActQuantizer:
    """Per-tensor activation quantizer with the constants pre-resolved.

    Evaluates the same numpy expression as
    :func:`repro.quant.affine.quantize` -- divide, add zero-point,
    round, clip, cast -- with the broadcasting/`value_range` bookkeeping
    hoisted to construction, so the result is bitwise identical and the
    per-call cost is five ufuncs.
    """

    def __init__(self, qp: QuantParams) -> None:
        self.qp = qp
        self._scale = qp._expand(qp.scale, 1)
        self._zp = qp._expand(qp.zero_point, 1)
        self._qmin = qp.qmin
        self._qmax = qp.qmax

    def __call__(self, x: np.ndarray) -> np.ndarray:
        q = (x / self._scale + self._zp).round()
        return q.clip(self._qmin, self._qmax).astype(np.int64)


class _BoundGemm:
    """One (config, layer, group) GEMM with the weight operand baked in.

    The backend decision is taken **once** at bind time with the same
    rules the engine applies per call (guard-free compile implies no
    hooks, so :func:`~repro.core.backend.resolve_backend` sees the
    identical inputs).  The fast mode reproduces
    :func:`~repro.core.fastpath.run_fastpath` exactly -- same kc-block
    splits, same float64-vs-int64 cast rule, same wrap -- with the
    weight-side validation, casting and timing loop hoisted out of the
    call.  The event mode keeps one reusable
    :class:`~repro.core.gemm.MixGemm`; per-call cycles are the engine
    clock *delta*, which equals a fresh executor's count because the
    micro-kernel timing is translation invariant (see the
    :mod:`repro.core.fastpath` module docstring).
    """

    def __init__(self, b: np.ndarray, config: MixGemmConfig,
                 gemm_backend: str, pack_cache: PackingCache) -> None:
        self.config = config
        self.k, self.n = b.shape
        self._costs = KernelCosts()
        decision = resolve_backend(gemm_backend, config,
                                   emulate_datapath=False)
        self.mode = ("fast" if decision.is_fast
                     and fastpath_applicable(config, self.k) is None
                     else "event")
        self.prepacked = False
        if self.mode == "fast":
            b64 = _check_matrix(b, config.bw_b, config.signed_b, "B")
            lay = config.layout
            kc_eff = aligned_kc(config.blocking.kc * lay.elems_a,
                                lay.group_elements)
            lo_a, hi_a = value_range(config.bw_a, config.signed_a)
            lo_b, hi_b = value_range(config.bw_b, config.signed_b)
            amax = max(abs(lo_a), abs(hi_a))
            bmax = max(abs(lo_b), abs(hi_b))
            self.accmem_bits = config.accmem_bits
            self.kc_eff = kc_eff
            self._blocks: list[tuple[slice, np.ndarray, bool]] = []
            for pc in range(0, self.k, kc_eff):
                kc_blk = min(kc_eff, self.k - pc)
                blk = b64[pc:pc + kc_blk, :]
                exact = kc_blk * amax * bmax < _FLOAT64_EXACT
                self._blocks.append((
                    slice(pc, pc + kc_blk),
                    blk.astype(np.float64) if exact else blk,
                    exact,
                ))
            self._single = (self._blocks[0] if len(self._blocks) == 1
                            else None)
            self._cycles_by_m: dict[int, int] = {}
        else:
            self._b = b
            self._executor = MixGemm(config, emulate_datapath=False,
                                    backend="event",
                                    pack_cache=pack_cache)
            self.prepacked = pack_cache.prewarm("B", b, config)

    def __call__(self, a: np.ndarray) -> tuple[np.ndarray, int]:
        """``(C, cycles)`` for int64 ``a`` already in the config's range.

        The A-side ``_check_matrix`` is provably redundant here --
        ``quantize`` clipped the activations into exactly the
        ``(bw_a, signed_a)`` range this config declares -- so the fast
        mode skips it; values and cycles are unaffected.
        """
        if self.mode == "event":
            engine = self._executor.engine
            before = engine.now
            res = self._executor.gemm(a, self._b)
            return res.c, res.cycles - before
        m = a.shape[0]
        cycles = self._cycles_by_m.get(m)
        if cycles is None:
            cycles = fastpath_timing(self.config, self._costs, m, self.n,
                                     self.k).cycles
            self._cycles_by_m[m] = cycles
        if self._single is not None:
            _, b_blk, exact = self._single
            if exact:
                c = (a.astype(np.float64) @ b_blk).astype(np.int64)
            else:
                c = a @ b_blk
            if self.accmem_bits < ACCMEM_CONTAINER_BITS:
                c = wrap_signed_array(c, self.accmem_bits)
            return c, cycles
        c = np.zeros((m, self.n), dtype=np.int64)
        for sl, b_blk, exact in self._blocks:
            a_blk = a[:, sl]
            if exact:
                partial = (a_blk.astype(np.float64)
                           @ b_blk).astype(np.int64)
            else:
                partial = a_blk @ b_blk
            if self.accmem_bits < ACCMEM_CONTAINER_BITS:
                partial = wrap_signed_array(partial, self.accmem_bits)
            c += partial
        return c, cycles


# -- per-layer blocking resolution --------------------------------------------


class _BlockingResolver:
    """Chooses each quantized layer's blocking at compile time.

    Resolution order: an explicit per-layer override (the path a
    :class:`SharedPlanHandle` re-applies on attach, keyed by the step's
    stable pre-fusion label), then a tuned-cache lookup by the layer's
    M-free shape digest (see :mod:`repro.tuning.cache`), then the
    simulator default.  Every non-default choice is recorded in
    ``applied`` so :class:`PlanInfo` and the share manifest can carry
    it -- a tuned plan's kc-block layout must reproduce exactly in an
    attaching worker or the fingerprint verification would refuse it.
    """

    def __init__(self, overrides: Optional[dict], tune_cache, *,
                 fuse: bool, gemm_backend: str) -> None:
        self.overrides = dict(overrides or {})
        self.tune_cache = tune_cache
        self.fuse = fuse
        self.gemm_backend = gemm_backend
        self.applied: dict[str, tuple[int, int, int, int, int]] = {}

    def __call__(self, label: str, *, bw_a: int, bw_b: int,
                 signed_a: bool, accmem_bits: int, k: int,
                 n: int) -> BlockingParams:
        blocking = self.overrides.get(label)
        if blocking is None and self.tune_cache is not None:
            # Imported lazily: repro.tuning imports this module.
            from repro.tuning.cache import (
                backend_capability,
                shape_digest,
            )
            probe = MixGemmConfig(
                bw_a=bw_a, bw_b=bw_b, signed_a=signed_a, signed_b=True,
                blocking=SIM_BLOCKING, accmem_bits=accmem_bits)
            digest = shape_digest(
                n=n, k=k, bw_a=bw_a, bw_w=bw_b, signed_a=signed_a,
                accmem_bits=accmem_bits, fuse=self.fuse,
                gemm_backend=self.gemm_backend,
                fast_ok=backend_capability(probe, k, self.gemm_backend))
            entry = self.tune_cache.lookup_shape(digest)
            if entry is not None:
                blocking = entry.blocking_params()
        if blocking is None or blocking == SIM_BLOCKING:
            return SIM_BLOCKING
        self.applied[label] = (blocking.mc, blocking.nc, blocking.kc,
                               blocking.mr, blocking.nr)
        return blocking


def _default_resolver() -> _BlockingResolver:
    """A resolver with no overrides and no cache: always SIM_BLOCKING."""
    return _BlockingResolver(None, None, fuse=True, gemm_backend="auto")


# -- compiled steps -----------------------------------------------------------


class _BnEpilogue:
    """Folded batchnorm with its constant arrays as plain attributes.

    A callable class instead of a closure so the shared-memory exporter
    can discover ``scale``/``shift`` and rebind them onto a shared
    segment (closure cells would hide them); the per-element float
    sequence is :func:`~repro.runtime.ops.apply_batchnorm` unchanged.
    """

    def __init__(self, scale: np.ndarray, shift: np.ndarray) -> None:
        self.scale = scale
        self.shift = shift

    def __call__(self, y: np.ndarray) -> np.ndarray:
        return ops.apply_batchnorm(y, self.scale, self.shift)


class _LinearFn:
    """float ``linear`` with rebindable weight/bias arrays (see above)."""

    def __init__(self, weight_t: np.ndarray,
                 bias: Optional[np.ndarray]) -> None:
        self.weight_t = weight_t
        self.bias = bias

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.bias is None:
            return x @ self.weight_t
        return x @ self.weight_t + self.bias


class _Step:
    """Base compiled step: one output label plus a fused epilogue chain."""

    #: Set by subclasses that accept a batchnorm fold.
    can_fold_bn = False

    def __init__(self, label: str, input_ids: list[str]) -> None:
        self.label = label
        #: The base node's label, stable across fusion (``label`` moves
        #: to the absorbed follower's id) -- the plan-equivalence
        #: verifier keys the pre-epilogue range off this.
        self.source_label = label
        self.input_ids = list(input_ids)
        self.epilogue: list[Callable[[np.ndarray], np.ndarray]] = []
        self.fused: list[str] = []

    def fuse(self, node: NodeSpec, label: str) -> None:
        """Absorb an elementwise follower; the step takes its label."""
        if node.op == "batchnorm2d":
            scale, shift = ops.batchnorm_params(node.tensors,
                                                node.attrs["eps"])
            self.epilogue.append(_BnEpilogue(scale, shift))
        elif node.op == "relu":
            self.epilogue.append(ops.relu)
            self.can_fold_bn = False  # BN after a non-linearity is no fold
        elif node.op == "relu6":
            self.epilogue.append(ops.relu6)
            self.can_fold_bn = False
        else:  # pragma: no cover - guarded by the fusion pass
            raise GraphError(f"cannot fuse op {node.op}")
        self.fused.append(node.op)
        self.label = label

    def _finish(self, y: np.ndarray) -> np.ndarray:
        for fn in self.epilogue:
            y = fn(y)
        return y

    def __call__(self, arrays: list[np.ndarray],
                 result: InferenceResult) -> np.ndarray:
        raise NotImplementedError


class _GenericStep(_Step):
    """Non-GEMM op: a precompiled closure over the node's constants."""

    def __init__(self, node: NodeSpec, label: str,
                 input_ids: list[str]) -> None:
        super().__init__(label, input_ids)
        self.op = node.op
        self._fn = self._build(node)

    @staticmethod
    def _build(node: NodeSpec) -> Callable[..., np.ndarray]:
        op = node.op
        if op == "add":
            def _add(a, b):
                if a.shape != b.shape:
                    raise GraphError(
                        f"add shape mismatch: {a.shape} vs {b.shape}")
                return a + b
            return _add
        if op == "channel_scale":
            def _cs(x, s):
                if s.shape != x.shape[:2]:
                    raise GraphError(
                        f"channel_scale gates {s.shape} do not match "
                        f"features {x.shape}")
                return ops.channel_scale(x, s)
            return _cs
        if op == "batchnorm2d":
            scale, shift = ops.batchnorm_params(node.tensors,
                                                node.attrs["eps"])
            return _BnEpilogue(scale, shift)
        if op in ("max_pool2d", "avg_pool2d"):
            kernel, stride = node.attrs["kernel"], node.attrs["stride"]
            pool = ops.max_pool2d if op == "max_pool2d" else ops.avg_pool2d
            return lambda x: pool(x, kernel, stride)
        if op == "linear":
            return _LinearFn(node.tensors["weight"].T,
                             node.tensors.get("bias"))
        simple = {
            "relu": ops.relu, "relu6": ops.relu6, "sigmoid": ops.sigmoid,
            "silu": ops.silu, "flatten": ops.flatten,
            "global_avg_pool2d": ops.global_avg_pool2d,
            "identity": lambda x: x,
        }
        if op in simple:
            return simple[op]
        raise GraphError(f"unsupported op: {op}")

    def __call__(self, arrays: list[np.ndarray],
                 result: InferenceResult) -> np.ndarray:
        return self._finish(self._fn(*arrays))


class _ConvLowering:
    """Per-input-shape conv lowering state (geometry + gather indices).

    Reproduces :func:`~repro.nn.im2col.im2row` value for value while
    replacing its per-call ``np.pad`` + strided-view copy with a
    persistent zero-halo scratch buffer (interior refreshed per call)
    and one precomputed gather: the index matrix is built by running the
    *same* windowing arithmetic over a position array once at compile
    time, so ``rows[i, j]`` picks exactly the element ``im2row`` would.
    Not thread-safe (the buffer is shared across calls) -- one plan per
    worker.
    """

    def __init__(self, x_shape: tuple[int, ...], kh: int, kw: int,
                 stride: int, padding: int, dtype) -> None:
        n, c, h, w = x_shape
        self.h, self.w, self.padding = h, w, padding
        self.out_h = (h + 2 * padding - kh) // stride + 1
        self.out_w = (w + 2 * padding - kw) // stride + 1
        self.m = n * self.out_h * self.out_w
        pad_shape = (n, c, h + 2 * padding, w + 2 * padding)
        self._buf = np.zeros(pad_shape, dtype=dtype)
        self._flat = self._buf.reshape(-1)
        positions = np.arange(self._buf.size,
                              dtype=np.intp).reshape(pad_shape)
        sn, sc, sh, sw = positions.strides
        windows = np.lib.stride_tricks.as_strided(
            positions, shape=(n, c, self.out_h, self.out_w, kh, kw),
            strides=(sn, sc, sh * stride, sw * stride, sh, sw),
            writeable=False,
        )
        self._idx = np.ascontiguousarray(
            windows.transpose(0, 2, 3, 1, 4, 5).reshape(self.m,
                                                        c * kh * kw))

    def rows(self, x: np.ndarray) -> np.ndarray:
        p = self.padding
        self._buf[:, :, p:p + self.h, p:p + self.w] = x
        return np.take(self._flat, self._idx)


class _ConvStep(_Step):
    """``quant_conv2d`` / ``conv2d`` with everything static precomputed."""

    can_fold_bn = True

    def __init__(self, node: NodeSpec, label: str, input_ids: list[str], *,
                 backend: str, gemm_backend: str, accmem_bits: int,
                 pack_cache: PackingCache,
                 resolve_blocking: Optional[_BlockingResolver] = None,
                 ) -> None:
        super().__init__(label, input_ids)
        if resolve_blocking is None:
            resolve_blocking = _default_resolver()
        self.op = node.op
        self.stats_label = label
        self.quant = node.op == "quant_conv2d"
        self.backend = backend
        attrs = node.attrs
        w = node.tensors["weight"]
        self.stride = attrs["stride"]
        self.kpad = attrs["padding"]
        self.groups = attrs["groups"]
        self.out_channels, cpg, self.kh, self.kw = w.shape
        self.cpg = cpg
        self.fpg = self.out_channels // self.groups
        bias = node.tensors.get("bias")
        self._bias = bias.reshape(1, -1, 1, 1) if bias is not None else None
        self._lowerings: dict[tuple[int, ...], _ConvLowering] = {}

        if self.quant:
            self.act_qp = QuantParams(
                scale=attrs["act_scale"], zero_point=0.0,
                bits=attrs["act_bits"], signed=attrs["act_signed"],
            )
            self._quant_act = _ActQuantizer(self.act_qp)
            w_scale = weight_absmax_scale(w, attrs["weight_bits"],
                                          channel_axis=0)
            wgt_qp = QuantParams(scale=w_scale, zero_point=0.0,
                                 bits=attrs["weight_bits"], signed=True,
                                 axis=0)
            w_q = quantize(w, wgt_qp)
            # Same expression the engine evaluates per call; hoisting it
            # does not change a single bit of the product below.
            self._out_scale = (float(self.act_qp.scale)
                               * wgt_qp.scale[None, :])
            panels = [
                w_q[g * self.fpg:(g + 1) * self.fpg].reshape(self.fpg, -1).T
                for g in range(self.groups)
            ]
            if backend == "mixgemm":
                blocking = resolve_blocking(
                    label, bw_a=attrs["act_bits"],
                    bw_b=attrs["weight_bits"],
                    signed_a=attrs["act_signed"],
                    accmem_bits=accmem_bits,
                    k=self.cpg * self.kh * self.kw, n=self.fpg)
                config = MixGemmConfig(
                    bw_a=attrs["act_bits"], bw_b=attrs["weight_bits"],
                    signed_a=attrs["act_signed"], signed_b=True,
                    blocking=blocking, accmem_bits=accmem_bits,
                )
                self.gemms = [_BoundGemm(p, config, gemm_backend,
                                         pack_cache) for p in panels]
            else:
                self.panels = panels
        else:
            # Keep the engine's exact view (reshape + transpose of the
            # original array): float matmul results can depend on the
            # operand memory layout BLAS sees, so we do not re-pack.
            self.panels = [
                w[g * self.fpg:(g + 1) * self.fpg].reshape(self.fpg, -1).T
                for g in range(self.groups)
            ]

    def _lowering(self, x_shape: tuple[int, ...]) -> _ConvLowering:
        low = self._lowerings.get(x_shape)
        if low is None:
            n, c, h, w = x_shape
            if c != self.cpg * self.groups:
                raise ValueError(
                    f"channel mismatch: input {c}, weight {self.cpg} x "
                    f"groups {self.groups}")
            dtype = np.int64 if self.quant else np.float64
            low = _ConvLowering((n, self.cpg, h, w), self.kh, self.kw,
                                self.stride, self.kpad, dtype)
            self._lowerings[x_shape] = low
        return low

    def __call__(self, arrays: list[np.ndarray],
                 result: InferenceResult) -> np.ndarray:
        x = arrays[0]
        low = self._lowering(x.shape)
        src = self._quant_act(x) if self.quant else x
        outs = []
        for g in range(self.groups):
            rows = low.rows(src[:, g * self.cpg:(g + 1) * self.cpg])
            if self.quant and self.backend == "mixgemm":
                gemm = self.gemms[g]
                observe_range(self.stats_label, "act", rows)
                c, cycles = gemm(rows)
                observe_range(self.stats_label, "acc", c)
                result.layer_stats.append(LayerStats(
                    op=self.op, config=gemm.config.name,
                    macs=rows.shape[0] * gemm.n * gemm.k, cycles=cycles,
                    layer=self.stats_label,
                ))
                outs.append(c)
            else:
                outs.append(rows @ self.panels[g])
        acc = np.concatenate(outs, axis=1)
        if self.quant:
            y = acc.astype(np.float64) * self._out_scale
        else:
            y = acc
        y = rows_to_nchw(y, x.shape[0], low.out_h, low.out_w)
        if self._bias is not None:
            y = y + self._bias
        return self._finish(y)


class _QuantLinearStep(_Step):
    """``quant_linear`` with quantized weights and scales baked in."""

    def __init__(self, node: NodeSpec, label: str, input_ids: list[str], *,
                 backend: str, gemm_backend: str, accmem_bits: int,
                 pack_cache: PackingCache,
                 resolve_blocking: Optional[_BlockingResolver] = None,
                 ) -> None:
        super().__init__(label, input_ids)
        if resolve_blocking is None:
            resolve_blocking = _default_resolver()
        self.op = node.op
        self.stats_label = label
        self.backend = backend
        attrs = node.attrs
        w = node.tensors["weight"]
        self.act_qp = QuantParams(
            scale=attrs["act_scale"], zero_point=0.0,
            bits=attrs["act_bits"], signed=attrs["act_signed"],
        )
        self._quant_act = _ActQuantizer(self.act_qp)
        w_scale = weight_absmax_scale(w, attrs["weight_bits"],
                                      channel_axis=0)
        wgt_qp = QuantParams(scale=w_scale, zero_point=0.0,
                             bits=attrs["weight_bits"], signed=True, axis=0)
        w_q_t = quantize(w, wgt_qp).T
        self._out_scale = float(self.act_qp.scale) * wgt_qp.scale
        self._bias = node.tensors.get("bias")
        if backend == "mixgemm":
            blocking = resolve_blocking(
                label, bw_a=attrs["act_bits"], bw_b=attrs["weight_bits"],
                signed_a=attrs["act_signed"], accmem_bits=accmem_bits,
                k=w_q_t.shape[0], n=w_q_t.shape[1])
            config = MixGemmConfig(
                bw_a=attrs["act_bits"], bw_b=attrs["weight_bits"],
                signed_a=attrs["act_signed"], signed_b=True,
                blocking=blocking, accmem_bits=accmem_bits,
            )
            self.gemm = _BoundGemm(w_q_t, config, gemm_backend, pack_cache)
        else:
            self.panel = w_q_t

    def __call__(self, arrays: list[np.ndarray],
                 result: InferenceResult) -> np.ndarray:
        x_q = self._quant_act(arrays[0])
        if self.backend == "mixgemm":
            observe_range(self.stats_label, "act", x_q)
            acc, cycles = self.gemm(x_q)
            observe_range(self.stats_label, "acc", acc)
            result.layer_stats.append(LayerStats(
                op=self.op, config=self.gemm.config.name,
                macs=x_q.shape[0] * self.gemm.n * self.gemm.k,
                cycles=cycles, layer=self.stats_label,
            ))
        else:
            acc = x_q @ self.panel
        y = acc.astype(np.float64) * self._out_scale
        if self._bias is not None:
            y = y + self._bias
        return self._finish(y)


# -- the plan -----------------------------------------------------------------


@dataclass
class PlanInfo:
    """Compile-time report: what the plan hoisted and fused."""

    nodes: int
    steps: int
    folded_batchnorms: int
    fused_activations: int
    bound_executors: int
    prepacked_panels: int
    backend: str
    gemm_backend: str
    accmem_bits: int = DEFAULT_ACCMEM_BITS
    fusions: list[str] = field(default_factory=list)
    #: Whether the fusion pass ran; recorded so a shared-plan attach
    #: can recompile with the exact same structure.
    fuse: bool = True
    #: Whether the compile consulted the autotuner result cache.
    tuned: bool = False
    #: Layers running at a non-default blocking, label ->
    #: (mc, nc, kc, mr, nr); recorded so shared-plan attaches recompile
    #: with the exact same per-layer blocking.
    tuned_layers: dict[str, tuple[int, int, int, int, int]] = field(
        default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "nodes": self.nodes, "steps": self.steps,
            "folded_batchnorms": self.folded_batchnorms,
            "fused_activations": self.fused_activations,
            "bound_executors": self.bound_executors,
            "prepacked_panels": self.prepacked_panels,
            "backend": self.backend, "gemm_backend": self.gemm_backend,
            "accmem_bits": self.accmem_bits,
            "fusions": list(self.fusions),
            "fuse": self.fuse,
            "tuned": self.tuned,
            "tuned_layers": {label: list(blk) for label, blk
                             in sorted(self.tuned_layers.items())},
        }


class GraphPlan:
    """A compiled graph: call :meth:`run` like the engine, minus the tax.

    Plans snapshot the graph's weights at compile time; mutating the
    graph afterwards (e.g. a fault campaign) requires recompiling.  Not
    thread-safe -- see the module docstring.
    """

    def __init__(self, graph: Optional[GraphModel], steps: list[_Step],
                 info: PlanInfo, pack_cache: PackingCache) -> None:
        self.graph = graph
        self.steps = steps
        self.info = info
        self.pack_cache = pack_cache

    def release_source(self) -> None:
        """Drop the reference to the source graph.

        ``run()`` never touches it; worker processes that attached a
        shared plan call this so the float64 source weights (about as
        large as the panels themselves) do not stay resident per
        worker.  A released plan cannot be re-exported or verified
        against its graph (``repro check --verify-plan``).
        """
        self.graph = None

    def run(self, x: np.ndarray) -> InferenceResult:
        """Execute the compiled plan; mirrors ``InferenceEngine.run``."""
        result = InferenceResult(output=np.asarray(x, dtype=np.float64),
                                 guard_level="off")
        values: dict[str, np.ndarray] = {"input": result.output}
        label = "input"
        for step in self.steps:
            try:
                arrays = [values[name] for name in step.input_ids]
            except KeyError as exc:
                raise GraphError(
                    f"step {step.label} references unknown tensor {exc}"
                ) from None
            label = step.label
            out = step(arrays, result)
            if self.info.backend == "mixgemm":
                observe_range(label, "out", out)
            values[label] = out
        result.output = values[label]
        return result

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class ids for a batch (softmax-free argmax)."""
        return self.run(x).output.argmax(axis=1)

    @property
    def pack_stats(self):
        return self.pack_cache.stats

    def describe(self) -> dict:
        return self.info.as_dict()


def _effective_wiring(graph: GraphModel
                      ) -> tuple[list[str], list[list[str]]]:
    """Labels and resolved input lists, engine-identical, validated."""
    labels = graph.effective_ids()
    seen: set[str] = set()
    for i, (node, label) in enumerate(zip(graph, labels)):
        if label == "input":
            raise GraphError(
                f"node {i} ({node.op}) uses the reserved id 'input'")
        if label in seen:
            raise GraphError(
                f"duplicate node id {label!r} at node {i} ({node.op}); "
                f"its output would overwrite an earlier tensor")
        seen.add(label)
    inputs_of: list[list[str]] = []
    prev = "input"
    for node, label in zip(graph, labels):
        inputs_of.append(list(node.inputs) if node.inputs else [prev])
        prev = label
    return labels, inputs_of


#: Ops a step can absorb into its epilogue (elementwise, single-input).
_FUSABLE_ACTS = frozenset({"relu", "relu6"})


def compile_graph(graph: GraphModel, *, backend: str = "numpy",
                  gemm_backend: str = "auto",
                  accmem_bits: int = DEFAULT_ACCMEM_BITS,
                  pack_cache: Optional[PackingCache] = None,
                  fuse: bool = True,
                  tuned: bool = False,
                  tune_cache=None,
                  blocking_overrides: Optional[
                      dict[str, BlockingParams]] = None) -> GraphPlan:
    """Compile ``graph`` into a :class:`GraphPlan` for ``backend``.

    Fusion is conservative and therefore exact: a follower is absorbed
    only when it has a single input, that input is the immediately
    preceding step's output, and no other node consumes it.  BN folds
    restrict further to conv producers that have not fused an activation
    yet (BN after a non-linearity is not a conv epilogue).  Everything
    else becomes its own step running the shared :mod:`~repro.runtime.ops`
    kernels, so an unfusable graph still compiles -- it just keeps more
    steps.

    ``tuned=True`` consults the autotuner result cache
    (:class:`~repro.tuning.cache.TuneCache`; ``tune_cache`` overrides
    the default on-disk location) and compiles each quantized GEMM layer
    at its tuned blocking -- layers without a cached winner keep the
    default.  ``blocking_overrides`` pins specific layers (label ->
    :class:`~repro.core.config.BlockingParams`) and wins over the cache;
    it is how a shared-plan attach reproduces the exporter's blocking
    without consulting any cache.
    """
    if backend not in ("numpy", "mixgemm"):
        raise GraphError(f"unknown backend: {backend}")
    if gemm_backend not in EXECUTION_BACKENDS:
        raise GraphError(f"unknown gemm backend: {gemm_backend}")
    if pack_cache is None:
        pack_cache = PackingCache()
    if tuned and tune_cache is None:
        from repro.tuning.cache import TuneCache  # lazy: import cycle
        tune_cache = TuneCache()
    resolver = _BlockingResolver(
        blocking_overrides, tune_cache if tuned else None,
        fuse=fuse, gemm_backend=gemm_backend)
    labels, inputs_of = _effective_wiring(graph)
    consumers = Counter(name for eff in inputs_of for name in eff)

    gemm_kwargs = dict(backend=backend, gemm_backend=gemm_backend,
                       accmem_bits=accmem_bits, pack_cache=pack_cache,
                       resolve_blocking=resolver)
    steps: list[_Step] = []
    folded_bn = fused_act = 0
    fusions: list[str] = []
    for node, label, eff in zip(graph, labels, inputs_of):
        if fuse and steps:
            tail = steps[-1]
            mergeable = (len(eff) == 1 and eff[0] == tail.label
                         and consumers[eff[0]] == 1)
            if mergeable and node.op == "batchnorm2d" and tail.can_fold_bn:
                fusions.append(f"{tail.label}+{node.op}->{label}")
                tail.fuse(node, label)
                folded_bn += 1
                continue
            if mergeable and node.op in _FUSABLE_ACTS:
                fusions.append(f"{tail.label}+{node.op}->{label}")
                tail.fuse(node, label)
                fused_act += 1
                continue
        if node.op in ("quant_conv2d", "conv2d"):
            steps.append(_ConvStep(node, label, eff, **gemm_kwargs))
        elif node.op == "quant_linear":
            steps.append(_QuantLinearStep(node, label, eff, **gemm_kwargs))
        else:
            steps.append(_GenericStep(node, label, eff))

    bound = prepacked = 0
    for step in steps:
        for gemm in getattr(step, "gemms", []):
            bound += 1
            prepacked += int(gemm.prepacked)
        gemm = getattr(step, "gemm", None)
        if gemm is not None:
            bound += 1
            prepacked += int(gemm.prepacked)

    info = PlanInfo(
        nodes=len(graph), steps=len(steps), folded_batchnorms=folded_bn,
        fused_activations=fused_act, bound_executors=bound,
        prepacked_panels=prepacked, backend=backend,
        gemm_backend=gemm_backend, accmem_bits=accmem_bits,
        fusions=fusions, fuse=fuse,
        tuned=tuned or bool(blocking_overrides),
        tuned_layers=dict(resolver.applied),
    )
    return GraphPlan(graph, steps, info, pack_cache)


# -- zero-copy shared-memory export/attach ------------------------------------


class PlanShareError(ReproError, RuntimeError):
    """Raised when a plan cannot be exported to / attached from shared
    memory (segment unavailable, manifest mismatch, tampered payload)."""


#: Alignment of each array payload inside the segment; keeps every
#: rebound view on a cache-line boundary (numpy does not require it,
#: BLAS kernels prefer it).
_SHM_ALIGN = 64


@dataclass(frozen=True)
class _SharedArraySpec:
    """Manifest entry for one constant array inside the segment."""

    key: str
    offset: int
    shape: tuple[int, ...]
    dtype: str
    order: str
    digest: str


@dataclass(frozen=True)
class SharedPlanHandle:
    """Picklable ticket for rebuilding a plan on the shared segment.

    Carries everything :func:`attach_plan` needs in another process:
    the segment name, the per-array manifest (offset/shape/dtype/
    storage order/content fingerprint) and the compile parameters that
    deterministically reproduce the plan structure from the serialized
    graph.
    """

    segment: str
    arrays: tuple[_SharedArraySpec, ...]
    total_bytes: int
    graph_json: str
    backend: str
    gemm_backend: str
    accmem_bits: int
    fuse: bool
    #: Per-layer tuned blocking, (label, (mc, nc, kc, mr, nr)) sorted
    #: by label.  Tuned blocking changes the packed kc-block layout, so
    #: the attach-side recompile must pin the exact same blocking or
    #: the fingerprint verification below would (rightly) refuse the
    #: segment.  Defaults to empty for untuned plans.
    tuned_blocking: tuple[
        tuple[str, tuple[int, int, int, int, int]], ...] = ()


def _array_order(arr: np.ndarray) -> str:
    """The storage order to reproduce in the segment.

    Float matmul results can depend on the memory layout BLAS sees
    (the non-quant conv panels and ``linear`` weights are transposed
    views, i.e. F-contiguous), so the exporter preserves C-vs-F order
    instead of flattening everything to C.
    """
    if arr.flags.f_contiguous and not arr.flags.c_contiguous:
        return "F"
    return "C"


def _gemm_array_slots(prefix: str, gemm: _BoundGemm) -> Iterator[
        tuple[str, np.ndarray, Callable[[np.ndarray], None]]]:
    """``(key, array, setter)`` for one bound GEMM's baked operands."""
    if gemm.mode == "fast":
        for i in range(len(gemm._blocks)):
            def _set_block(arr: np.ndarray, g: _BoundGemm = gemm,
                           idx: int = i) -> None:
                sl, _, exact = g._blocks[idx]
                g._blocks[idx] = (sl, arr, exact)
                g._single = (g._blocks[0] if len(g._blocks) == 1
                             else None)
            yield f"{prefix}.block{i}", gemm._blocks[i][1], _set_block
    else:
        def _set_b(arr: np.ndarray, g: _BoundGemm = gemm) -> None:
            g._b = arr
        yield f"{prefix}.b", gemm._b, _set_b


def _attr_slots(obj: object, attrs: tuple[str, ...], prefix: str
                ) -> Iterator[
        tuple[str, np.ndarray, Callable[[np.ndarray], None]]]:
    for attr in attrs:
        value = getattr(obj, attr, None)
        if isinstance(value, np.ndarray):
            def _set(arr: np.ndarray, o: object = obj,
                     a: str = attr) -> None:
                setattr(o, a, arr)
            yield f"{prefix}.{attr}", value, _set


def iter_plan_arrays(plan: GraphPlan) -> Iterator[
        tuple[str, np.ndarray, Callable[[np.ndarray], None]]]:
    """Deterministic ``(key, array, setter)`` walk of a plan's constants.

    Covers every ndarray the plan baked in at compile time: fast-mode
    kc-blocks, event-mode weight operands, float panels, output scales,
    biases, folded-BN epilogue constants and generic-step constants.
    The walk order is a pure function of the plan structure, so two
    deterministic compiles of the same graph yield the same sequence --
    which is what lets :func:`attach_plan` line the local compile up
    against the exporter's manifest entry by entry.
    """
    for si, step in enumerate(plan.steps):
        base = f"step{si}:{step.label}"
        yield from _attr_slots(step, ("_out_scale", "_bias"), base)
        fn = getattr(step, "_fn", None)
        if isinstance(fn, (_BnEpilogue, _LinearFn)):
            yield from _attr_slots(
                fn, ("scale", "shift", "weight_t", "bias"), f"{base}.fn")
        for ei, ep in enumerate(step.epilogue):
            if isinstance(ep, _BnEpilogue):
                yield from _attr_slots(ep, ("scale", "shift"),
                                       f"{base}.ep{ei}")
        for gi, gemm in enumerate(getattr(step, "gemms", [])):
            yield from _gemm_array_slots(f"{base}.g{gi}", gemm)
        gemm = getattr(step, "gemm", None)
        if gemm is not None:
            yield from _gemm_array_slots(f"{base}.gemm", gemm)
        panels = getattr(step, "panels", None)
        if panels is not None:
            for pi in range(len(panels)):
                def _set_panel(arr: np.ndarray, s: _Step = step,
                               idx: int = pi) -> None:
                    s.panels[idx] = arr
                yield f"{base}.panel{pi}", panels[pi], _set_panel


def _segment_view(shm: shared_memory.SharedMemory,
                  spec: _SharedArraySpec) -> np.ndarray:
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                      buffer=shm.buf, offset=spec.offset,
                      order=spec.order)


class SharedPlan:
    """Owner side of an exported plan: segment + manifest + lifecycle.

    The exporting process is the segment's owner: it must ``close()``
    its mapping **and** ``unlink()`` the segment when serving stops
    (the context manager does both).  Attached processes use
    :class:`AttachedPlan`, which only ever closes.
    """

    def __init__(self, handle: SharedPlanHandle,
                 shm: shared_memory.SharedMemory) -> None:
        self.handle = handle
        self._shm = shm
        self._closed = False
        self._unlinked = False

    @property
    def segment(self) -> str:
        return self.handle.segment

    @property
    def buf(self):
        return self._shm.buf

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system (idempotent).

        Call after every attached process has closed; a mapping that is
        still open keeps its memory alive until it too closes.
        """
        if not self._unlinked:
            self._unlinked = True
            self._shm.unlink()

    def __enter__(self) -> "SharedPlan":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        self.unlink()


class AttachedPlan:
    """Worker side: a plan rebuilt on the shared segment.

    ``plan`` is a full :class:`GraphPlan` whose constant arrays are
    read-only views of the exporter's segment.  ``close()`` detaches
    the mapping; it never unlinks -- the exporter owns the segment.
    """

    def __init__(self, plan: GraphPlan,
                 shm: shared_memory.SharedMemory,
                 handle: SharedPlanHandle) -> None:
        self.plan = plan
        self.handle = handle
        self._shm = shm
        self._closed = False

    @property
    def buf(self):
        return self._shm.buf

    def close(self) -> None:
        """Detach from the segment (idempotent).  The plan must not be
        run afterwards: its views point into the unmapped buffer."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def __enter__(self) -> "AttachedPlan":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def export_plan(plan: GraphPlan) -> SharedPlan:
    """Serialize ``plan``'s constant arrays into one shared segment.

    Every array from :func:`iter_plan_arrays` is copied into a single
    ``SharedMemory`` segment (64-byte aligned, storage order preserved)
    and the plan is **rebound in place** onto read-only views of the
    segment -- after export the calling process itself serves from the
    shared copy, so the private originals become garbage.  Returns the
    owning :class:`SharedPlan`; its picklable ``handle`` travels to
    worker processes for :func:`attach_plan`.
    """
    if plan.graph is None:
        raise PlanShareError(
            "cannot export a plan whose source graph was released")
    slots = list(iter_plan_arrays(plan))
    offsets: list[int] = []
    total = 0
    for _, arr, _ in slots:
        total = -(-total // _SHM_ALIGN) * _SHM_ALIGN
        offsets.append(total)
        total += arr.nbytes
    shm: Optional[shared_memory.SharedMemory] = None
    ok = False
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        specs: list[_SharedArraySpec] = []
        for offset, (key, arr, setter) in zip(offsets, slots):
            spec = _SharedArraySpec(
                key=key, offset=offset, shape=tuple(arr.shape),
                dtype=arr.dtype.str, order=_array_order(arr),
                digest=PackingCache.fingerprint(arr))
            view = _segment_view(shm, spec)
            view[...] = arr
            view.flags.writeable = False
            setter(view)
            specs.append(spec)
        handle = SharedPlanHandle(
            segment=shm.name, arrays=tuple(specs), total_bytes=total,
            graph_json=plan.graph.to_json(),
            backend=plan.info.backend,
            gemm_backend=plan.info.gemm_backend,
            accmem_bits=plan.info.accmem_bits,
            fuse=plan.info.fuse,
            tuned_blocking=tuple(
                sorted(plan.info.tuned_layers.items())))
        ok = True
        return SharedPlan(handle, shm)
    except (OSError, ValueError) as exc:
        raise PlanShareError(
            f"shared-memory export failed: {exc}") from exc
    finally:
        if not ok and shm is not None:
            shm.close()
            shm.unlink()


def attach_plan(handle: SharedPlanHandle) -> AttachedPlan:
    """Rebuild the exported plan in this process, zero-copy.

    The graph is recompiled locally (deterministic, so the plan
    structure matches the exporter's), then every constant array is
    verified against the manifest fingerprint -- both the segment
    payload (tamper/staleness detection) and the locally compiled
    array (graph/version skew detection) -- and rebound to a read-only
    view of the segment.  The transient local copies are dropped, so
    the steady-state per-process footprint of the plan's constants is
    the scratch state only; call
    :meth:`GraphPlan.release_source` afterwards to also drop the
    rebuilt float64 graph weights.
    """
    graph = GraphModel.from_json(handle.graph_json)
    overrides = {label: BlockingParams(*blk)
                 for label, blk in handle.tuned_blocking} or None
    plan = compile_graph(graph, backend=handle.backend,
                         gemm_backend=handle.gemm_backend,
                         accmem_bits=handle.accmem_bits,
                         fuse=handle.fuse,
                         blocking_overrides=overrides)
    slots = list(iter_plan_arrays(plan))
    if len(slots) != len(handle.arrays):
        raise PlanShareError(
            f"manifest lists {len(handle.arrays)} arrays but the local "
            f"compile produced {len(slots)}: graph or version skew")
    shm: Optional[shared_memory.SharedMemory] = None
    ok = False
    try:
        shm = shared_memory.SharedMemory(name=handle.segment)
        for spec, (key, arr, setter) in zip(handle.arrays, slots):
            if spec.key != key:
                raise PlanShareError(
                    f"manifest entry {spec.key!r} does not line up with "
                    f"local plan array {key!r}: graph or version skew")
            if PackingCache.fingerprint(arr) != spec.digest:
                raise PlanShareError(
                    f"locally compiled array {key!r} does not match the "
                    f"exported fingerprint: the graph differs from the "
                    f"one the segment was exported from")
            view = _segment_view(shm, spec)
            if PackingCache.fingerprint(view) != spec.digest:
                raise PlanShareError(
                    f"segment payload for {key!r} does not match its "
                    f"manifest fingerprint: tampered or stale segment")
            view.flags.writeable = False
            setter(view)
        ok = True
        return AttachedPlan(plan, shm, handle)
    except FileNotFoundError as exc:
        raise PlanShareError(
            f"shared segment {handle.segment!r} does not exist "
            f"(exporter gone or already unlinked)") from exc
    finally:
        if not ok and shm is not None:
            shm.close()


def plan_share_stats(plan: GraphPlan, buf=None) -> dict:
    """How many of the plan's constant bytes alias ``buf``.

    With ``buf`` (a shared segment's buffer) the split proves the
    zero-copy property deterministically: ``plan_bytes_shared`` counts
    arrays whose storage lives inside the segment,
    ``plan_bytes_private`` whatever is process-local.  Without ``buf``
    everything counts as private.  This is the measure the serving
    benchmark reports per worker -- unlike RSS deltas it cannot be
    confounded by allocator or interpreter noise.
    """
    base = size = 0
    if buf is not None:
        raw = np.frombuffer(buf, dtype=np.uint8)
        base = int(raw.__array_interface__["data"][0])
        size = raw.nbytes
    arrays = total = shared = 0
    for _, arr, _ in iter_plan_arrays(plan):
        arrays += 1
        total += arr.nbytes
        addr = int(arr.__array_interface__["data"][0])
        if buf is not None and base <= addr \
                and addr + arr.nbytes <= base + size:
            shared += arr.nbytes
    return {
        "arrays": arrays,
        "plan_bytes_total": total,
        "plan_bytes_shared": shared,
        "plan_bytes_private": total - shared,
    }
