"""DAG export for composite modules: residual / depthwise / SE networks.

:func:`repro.runtime.graph.export_sequential` covers linear chains;
real CNN families branch (ResNet shortcuts, squeeze-excite gates).  This
module walks the composite blocks of :mod:`repro.models.builders` and
emits a wired :class:`~repro.runtime.graph.GraphModel`, so every scaled
architecture in the zoo deploys on the inference engine -- checked
bit-exactly against the training-time forward in the tests.
"""

from __future__ import annotations

from repro.models.builders import (
    BasicBlock,
    ConvBnRelu,
    DepthwiseSeparable,
    MBConv,
    RegNetBlock,
    SqueezeExcite,
    _TinyEfficientNet,
    _TinyMobileNet,
    _TinyRegNet,
    _TinyResNet,
)
from repro.nn.layers import Module, Sequential

from .graph import GraphBuilder, GraphError, GraphModel, NodeSpec
from .graph import _export_layer


def _leaf(builder: GraphBuilder, layer, input_id: str) -> str:
    return builder.add(_export_layer(layer), inputs=[input_id])


def _export_conv_bn_relu(builder: GraphBuilder, block: ConvBnRelu,
                         input_id: str) -> str:
    out = _leaf(builder, block.conv, input_id)
    out = _leaf(builder, block.bn, out)
    return builder.add(NodeSpec(op="relu"), inputs=[out])


def _export_basic_block(builder: GraphBuilder, block: BasicBlock,
                        input_id: str) -> str:
    out = _leaf(builder, block.conv1, input_id)
    out = _leaf(builder, block.bn1, out)
    out = builder.add(NodeSpec(op="relu"), inputs=[out])
    out = _leaf(builder, block.conv2, out)
    out = _leaf(builder, block.bn2, out)
    identity = input_id
    if block._project:
        identity = _leaf(builder, block.shortcut_conv, input_id)
        identity = _leaf(builder, block.shortcut_bn, identity)
    out = builder.add(NodeSpec(op="add"), inputs=[out, identity])
    return builder.add(NodeSpec(op="relu"), inputs=[out])


def _export_depthwise_separable(builder: GraphBuilder,
                                block: DepthwiseSeparable,
                                input_id: str) -> str:
    out = _export_conv_bn_relu(builder, block.dw, input_id)
    return _export_conv_bn_relu(builder, block.pw, out)


def _export_regnet_block(builder: GraphBuilder, block: RegNetBlock,
                         input_id: str) -> str:
    out = _export_conv_bn_relu(builder, block.a, input_id)
    out = _export_conv_bn_relu(builder, block.b, out)
    out = _leaf(builder, block.c, out)
    out = _leaf(builder, block.c_bn, out)
    identity = input_id
    if block._project:
        identity = _leaf(builder, block.sc_conv, input_id)
        identity = _leaf(builder, block.sc_bn, identity)
    out = builder.add(NodeSpec(op="add"), inputs=[out, identity])
    return builder.add(NodeSpec(op="relu"), inputs=[out])


def _export_squeeze_excite(builder: GraphBuilder, block: SqueezeExcite,
                           input_id: str) -> str:
    gates = builder.add(NodeSpec(op="global_avg_pool2d"),
                        inputs=[input_id])
    gates = _leaf(builder, block.reduce, gates)
    gates = builder.add(NodeSpec(op="relu"), inputs=[gates])
    gates = _leaf(builder, block.expand, gates)
    gates = builder.add(NodeSpec(op="sigmoid"), inputs=[gates])
    return builder.add(NodeSpec(op="channel_scale"),
                       inputs=[input_id, gates])


def _export_mbconv(builder: GraphBuilder, block: MBConv,
                   input_id: str) -> str:
    out = input_id
    if block.expand is not None:
        out = _export_conv_bn_relu(builder, block.expand, out)
    out = _export_conv_bn_relu(builder, block.dw, out)
    out = _export_squeeze_excite(builder, block.se, out)
    out = _leaf(builder, block.project, out)
    out = _leaf(builder, block.project_bn, out)
    if block._residual:
        out = builder.add(NodeSpec(op="add"), inputs=[out, input_id])
    return out


def _export_tiny_resnet(builder: GraphBuilder, model: _TinyResNet,
                        input_id: str) -> str:
    out = _export_conv_bn_relu(builder, model.stem, input_id)
    out = _export_basic_block(builder, model.block1, out)
    out = _export_basic_block(builder, model.block2, out)
    out = builder.add(NodeSpec(op="global_avg_pool2d"), inputs=[out])
    return _leaf(builder, model.fc, out)


def _export_tiny_mobilenet(builder: GraphBuilder, model: _TinyMobileNet,
                           input_id: str) -> str:
    out = _export_conv_bn_relu(builder, model.stem, input_id)
    out = _export_depthwise_separable(builder, model.ds1, out)
    out = _export_depthwise_separable(builder, model.ds2, out)
    out = builder.add(NodeSpec(op="global_avg_pool2d"), inputs=[out])
    return _leaf(builder, model.fc, out)


def _export_tiny_regnet(builder: GraphBuilder, model: _TinyRegNet,
                        input_id: str) -> str:
    out = _export_conv_bn_relu(builder, model.stem, input_id)
    out = _export_regnet_block(builder, model.block1, out)
    out = _export_regnet_block(builder, model.block2, out)
    out = builder.add(NodeSpec(op="global_avg_pool2d"), inputs=[out])
    return _leaf(builder, model.fc, out)


def _export_tiny_efficientnet(builder: GraphBuilder,
                              model: _TinyEfficientNet,
                              input_id: str) -> str:
    out = _export_conv_bn_relu(builder, model.stem, input_id)
    out = _export_mbconv(builder, model.mb1, out)
    out = _export_mbconv(builder, model.mb2, out)
    out = builder.add(NodeSpec(op="global_avg_pool2d"), inputs=[out])
    return _leaf(builder, model.fc, out)


_HANDLERS = [
    (ConvBnRelu, _export_conv_bn_relu),
    (BasicBlock, _export_basic_block),
    (DepthwiseSeparable, _export_depthwise_separable),
    (RegNetBlock, _export_regnet_block),
    (SqueezeExcite, _export_squeeze_excite),
    (MBConv, _export_mbconv),
    (_TinyResNet, _export_tiny_resnet),
    (_TinyMobileNet, _export_tiny_mobilenet),
    (_TinyRegNet, _export_tiny_regnet),
    (_TinyEfficientNet, _export_tiny_efficientnet),
]


def export_into(builder: GraphBuilder, module: Module,
                input_id: str) -> str:
    """Emit one module (leaf, composite, or Sequential) into a builder."""
    if isinstance(module, Sequential):
        out = input_id
        for layer in module:
            out = export_into(builder, layer, out)
        return out
    for cls, handler in _HANDLERS:
        if isinstance(module, cls):
            return handler(builder, module, input_id)
    # Fall back to a leaf layer; _export_layer raises for true unknowns.
    return _leaf(builder, module, input_id)


def export_model(model: Module, name: str = "model") -> GraphModel:
    """Export any zoo model (Sequential or composite) to the DAG IR."""
    builder = GraphBuilder(name)
    export_into(builder, model, "input")
    graph = builder.build()
    if not graph.nodes:
        raise GraphError("model produced an empty graph")
    return graph
