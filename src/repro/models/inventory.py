"""Layer inventories of the paper's six CNN workloads (Section IV).

The performance evaluation needs every network's *exact computational
shape* -- each convolution's GEMM dimensions after im2col -- not trained
weights.  This module encodes AlexNet, VGG-16, ResNet-18, MobileNet-V1,
RegNet-X-400MF and EfficientNet-B0 at ImageNet scale (224x224 inputs) as
layer lists, from which per-layer GEMM sizes, MAC counts and memory
footprints are derived.

Shapes follow the canonical torchvision / reference implementations the
paper builds on (ref [1], [46]).  Total MAC counts are asserted against
the published figures in the test-suite (AlexNet ~0.7 GMAC, VGG-16 ~15.5
GMAC, ResNet-18 ~1.8 GMAC, MobileNet-V1 ~0.57 GMAC, RegNet-X-400MF ~0.4
GMAC, EfficientNet-B0 ~0.4 GMAC).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.nn.im2col import ConvGeometry


@dataclass(frozen=True)
class LayerSpec:
    """One linear layer (conv or fully-connected) of a workload.

    Fully-connected layers are expressed as 1x1 convolutions over a 1x1
    feature map, which is exactly how they lower to GEMM.
    """

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    padding: int
    in_size: int
    groups: int = 1
    kind: str = "conv"  # "conv", "depthwise", "pointwise", "fc"

    @property
    def geometry(self) -> ConvGeometry:
        return ConvGeometry(
            batch=1,
            in_channels=self.in_channels,
            in_h=self.in_size,
            in_w=self.in_size,
            out_channels=self.out_channels,
            kernel_h=self.kernel,
            kernel_w=self.kernel,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    @property
    def out_size(self) -> int:
        return self.geometry.out_h

    @property
    def macs(self) -> int:
        return self.geometry.macs

    @property
    def gemm_dims(self) -> tuple[int, int, int]:
        """(m, k, n) of the per-group im2col GEMM."""
        geo = self.geometry
        return geo.gemm_m, geo.gemm_k, geo.gemm_n

    @property
    def weight_elements(self) -> int:
        return (self.out_channels * (self.in_channels // self.groups)
                * self.kernel * self.kernel)

    @property
    def activation_elements(self) -> int:
        """Input activation volume (for bandwidth/footprint estimates)."""
        return self.in_channels * self.in_size * self.in_size


@dataclass
class NetworkInventory:
    """A named workload: ordered layer list plus derived totals."""

    name: str
    layers: list[LayerSpec] = field(default_factory=list)
    input_size: int = 224

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def conv_layers(self) -> list[LayerSpec]:
        return [l for l in self.layers if l.kind != "fc"]

    @property
    def fc_layers(self) -> list[LayerSpec]:
        return [l for l in self.layers if l.kind == "fc"]

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def conv_macs(self) -> int:
        """MACs in convolutional layers -- the paper's Figure 7 accounts
        "the execution time spent on each convolutional layer"."""
        return sum(l.macs for l in self.conv_layers)

    @property
    def total_weights(self) -> int:
        return sum(l.weight_elements for l in self.layers)

    def weight_bytes(self, bits: int) -> float:
        """Model size at a uniform weight bitwidth."""
        return self.total_weights * bits / 8

    def macs_fraction(self, layer: LayerSpec) -> float:
        return layer.macs / self.total_macs


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def _out(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def alexnet() -> NetworkInventory:
    """AlexNet (Krizhevsky et al.), torchvision variant, 224x224 input."""
    net = NetworkInventory("alexnet")
    s = 224
    net.layers.append(LayerSpec("conv1", 3, 64, 11, 4, 2, s))
    s = _out(s, 11, 4, 2)          # 55
    s = _out(s, 3, 2, 0)           # pool -> 27
    net.layers.append(LayerSpec("conv2", 64, 192, 5, 1, 2, s))
    s = _out(s, 3, 2, 0)           # pool -> 13
    net.layers.append(LayerSpec("conv3", 192, 384, 3, 1, 1, s))
    net.layers.append(LayerSpec("conv4", 384, 256, 3, 1, 1, s))
    net.layers.append(LayerSpec("conv5", 256, 256, 3, 1, 1, s))
    # pool -> 6x6, then the classifier.
    net.layers.append(LayerSpec("fc6", 256 * 6 * 6, 4096, 1, 1, 0, 1,
                                kind="fc"))
    net.layers.append(LayerSpec("fc7", 4096, 4096, 1, 1, 0, 1, kind="fc"))
    net.layers.append(LayerSpec("fc8", 4096, 1000, 1, 1, 0, 1, kind="fc"))
    return net


def vgg16() -> NetworkInventory:
    """VGG-16 (configuration D), 224x224 input."""
    net = NetworkInventory("vgg16")
    cfg = [
        (64, 2), (128, 2), (256, 3), (512, 3), (512, 3),
    ]
    s = 224
    in_ch = 3
    idx = 1
    for width, reps in cfg:
        for _ in range(reps):
            net.layers.append(
                LayerSpec(f"conv{idx}", in_ch, width, 3, 1, 1, s)
            )
            in_ch = width
            idx += 1
        s //= 2  # 2x2 max pool
    net.layers.append(LayerSpec("fc1", 512 * 7 * 7, 4096, 1, 1, 0, 1,
                                kind="fc"))
    net.layers.append(LayerSpec("fc2", 4096, 4096, 1, 1, 0, 1, kind="fc"))
    net.layers.append(LayerSpec("fc3", 4096, 1000, 1, 1, 0, 1, kind="fc"))
    return net


def resnet18() -> NetworkInventory:
    """ResNet-18: stem + 4 stages x 2 basic blocks, 224x224 input."""
    net = NetworkInventory("resnet18")
    net.layers.append(LayerSpec("conv1", 3, 64, 7, 2, 3, 224))
    s = _out(224, 7, 2, 3)  # 112
    s = _out(s, 3, 2, 1)    # maxpool -> 56
    widths = [64, 128, 256, 512]
    in_ch = 64
    for stage, width in enumerate(widths, start=1):
        for block in range(2):
            stride = 2 if stage > 1 and block == 0 else 1
            prefix = f"layer{stage}.{block}"
            net.layers.append(LayerSpec(
                f"{prefix}.conv1", in_ch, width, 3, stride, 1, s,
            ))
            s_out = _out(s, 3, stride, 1)
            net.layers.append(LayerSpec(
                f"{prefix}.conv2", width, width, 3, 1, 1, s_out,
            ))
            if stride != 1 or in_ch != width:
                net.layers.append(LayerSpec(
                    f"{prefix}.downsample", in_ch, width, 1, stride, 0, s,
                    kind="pointwise",
                ))
            in_ch = width
            s = s_out
    net.layers.append(LayerSpec("fc", 512, 1000, 1, 1, 0, 1, kind="fc"))
    return net


#: MobileNet-V1 body: (out_channels, stride) of each depthwise-separable
#: block after the 32-channel stem.
_MOBILENET_BLOCKS = [
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
    (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
    (1024, 2), (1024, 1),
]


def mobilenet_v1() -> NetworkInventory:
    """MobileNet-V1 (width 1.0), 224x224 input."""
    net = NetworkInventory("mobilenet_v1")
    net.layers.append(LayerSpec("conv1", 3, 32, 3, 2, 1, 224))
    s = _out(224, 3, 2, 1)  # 112
    in_ch = 32
    for i, (out_ch, stride) in enumerate(_MOBILENET_BLOCKS, start=1):
        net.layers.append(LayerSpec(
            f"dw{i}", in_ch, in_ch, 3, stride, 1, s,
            groups=in_ch, kind="depthwise",
        ))
        s = _out(s, 3, stride, 1)
        net.layers.append(LayerSpec(
            f"pw{i}", in_ch, out_ch, 1, 1, 0, s, kind="pointwise",
        ))
        in_ch = out_ch
    net.layers.append(LayerSpec("fc", 1024, 1000, 1, 1, 0, 1, kind="fc"))
    return net


def regnet_x_400mf() -> NetworkInventory:
    """RegNet-X-400MF: widths [32, 64, 160, 400], depths [1, 2, 7, 12],
    group width 16 (Radosavovic et al. design space)."""
    net = NetworkInventory("regnet_x_400mf")
    net.layers.append(LayerSpec("stem", 3, 32, 3, 2, 1, 224))
    s = _out(224, 3, 2, 1)  # 112
    widths = [32, 64, 160, 400]
    depths = [1, 2, 7, 12]
    group_width = 16
    in_ch = 32
    for stage, (width, depth) in enumerate(zip(widths, depths), start=1):
        groups = width // group_width
        for block in range(depth):
            stride = 2 if block == 0 else 1
            prefix = f"s{stage}.b{block}"
            net.layers.append(LayerSpec(
                f"{prefix}.conv1", in_ch, width, 1, 1, 0, s,
                kind="pointwise",
            ))
            net.layers.append(LayerSpec(
                f"{prefix}.conv2", width, width, 3, stride, 1, s,
                groups=groups,
            ))
            s_out = _out(s, 3, stride, 1)
            net.layers.append(LayerSpec(
                f"{prefix}.conv3", width, width, 1, 1, 0, s_out,
                kind="pointwise",
            ))
            if stride != 1 or in_ch != width:
                net.layers.append(LayerSpec(
                    f"{prefix}.shortcut", in_ch, width, 1, stride, 0, s,
                    kind="pointwise",
                ))
            in_ch = width
            s = s_out
    net.layers.append(LayerSpec("fc", 400, 1000, 1, 1, 0, 1, kind="fc"))
    return net


#: EfficientNet-B0 stages: (expansion, out_channels, repeats, stride,
#: kernel) per MBConv stage.
_EFFICIENTNET_STAGES = [
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
]


def efficientnet_b0() -> NetworkInventory:
    """EfficientNet-B0 (MBConv + squeeze-excite), 224x224 input."""
    net = NetworkInventory("efficientnet_b0")
    net.layers.append(LayerSpec("stem", 3, 32, 3, 2, 1, 224))
    s = _out(224, 3, 2, 1)  # 112
    in_ch = 32
    blk = 0
    for expansion, out_ch, repeats, first_stride, kernel in \
            _EFFICIENTNET_STAGES:
        for rep in range(repeats):
            stride = first_stride if rep == 0 else 1
            mid = in_ch * expansion
            prefix = f"mb{blk}"
            if expansion != 1:
                net.layers.append(LayerSpec(
                    f"{prefix}.expand", in_ch, mid, 1, 1, 0, s,
                    kind="pointwise",
                ))
            net.layers.append(LayerSpec(
                f"{prefix}.dw", mid, mid, kernel, stride,
                kernel // 2, s, groups=mid, kind="depthwise",
            ))
            s_out = _out(s, kernel, stride, kernel // 2)
            # Squeeze-and-excite: two 1x1 convs over pooled features.
            se = max(1, in_ch // 4)
            net.layers.append(LayerSpec(
                f"{prefix}.se_reduce", mid, se, 1, 1, 0, 1,
                kind="pointwise",
            ))
            net.layers.append(LayerSpec(
                f"{prefix}.se_expand", se, mid, 1, 1, 0, 1,
                kind="pointwise",
            ))
            net.layers.append(LayerSpec(
                f"{prefix}.project", mid, out_ch, 1, 1, 0, s_out,
                kind="pointwise",
            ))
            in_ch = out_ch
            s = s_out
            blk += 1
    net.layers.append(LayerSpec("head", 320, 1280, 1, 1, 0, s,
                                kind="pointwise"))
    net.layers.append(LayerSpec("fc", 1280, 1000, 1, 1, 0, 1, kind="fc"))
    return net


#: Registry of the six evaluated workloads (Section IV).
NETWORKS: dict[str, Callable[[], NetworkInventory]] = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "resnet18": resnet18,
    "mobilenet_v1": mobilenet_v1,
    "regnet_x_400mf": regnet_x_400mf,
    "efficientnet_b0": efficientnet_b0,
}

#: Display names as the paper writes them.
DISPLAY_NAMES = {
    "alexnet": "AlexNet",
    "vgg16": "VGG-16",
    "resnet18": "ResNet-18",
    "mobilenet_v1": "MobileNet-V1",
    "regnet_x_400mf": "RegNet-x-400mf",
    "efficientnet_b0": "EfficientNet-B0",
}


def get_network(name: str) -> NetworkInventory:
    """Build one of the six evaluated workloads by name."""
    try:
        return NETWORKS[name]()
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; choose from {sorted(NETWORKS)}"
        ) from None


def table3_convolution() -> LayerSpec:
    """The related-work convolution microbenchmark (Table III footnote):
    input 16x16x32, filter 64x3x3x32."""
    return LayerSpec("conv_bench", 32, 64, 3, 1, 1, 16)
