"""Transformer (BERT) workload model -- the paper's NLP extension.

Section IV motivates Mix-GEMM beyond CNNs: "recent works have
demonstrated competitive quality of results for low mixed-precision
quantization of BERT ... whose compute expansive kernels based on
matrix-matrix multiplications could be accelerated exploiting Mix-GEMM".
This module makes that projection concrete: a BERT-base encoder described
as the exact GEMM sequence it executes, so the same performance/energy
models that evaluate the CNNs can evaluate BERT.

Unlike convolutions, transformer GEMMs need no im2col: the linear
projections and attention products are already matrix-matrix multiplies
over the sequence dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class GemmWorkloadItem:
    """One GEMM of the workload: C[m x n] = A[m x k] @ B[k x n]."""

    name: str
    m: int
    k: int
    n: int
    repeats: int = 1
    #: Whether the B operand is a *weight* (static, quantizable offline)
    #: or an *activation* (attention products quantize both sides
    #: dynamically).
    weight_operand: bool = True

    @property
    def macs(self) -> int:
        return self.repeats * self.m * self.k * self.n


@dataclass
class GemmWorkload:
    """A named sequence of GEMMs (the transformer analogue of
    :class:`~repro.models.inventory.NetworkInventory`)."""

    name: str
    items: list[GemmWorkloadItem] = field(default_factory=list)

    def __iter__(self) -> Iterator[GemmWorkloadItem]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def total_macs(self) -> int:
        return sum(item.macs for item in self.items)

    @property
    def weight_macs_fraction(self) -> float:
        weight = sum(i.macs for i in self.items if i.weight_operand)
        return weight / self.total_macs


def bert_encoder_layer(
    seq_len: int,
    hidden: int,
    heads: int,
    ffn: int,
    layer_idx: int = 0,
) -> list[GemmWorkloadItem]:
    """The GEMM sequence of one BERT encoder layer (batch 1)."""
    head_dim = hidden // heads
    p = f"layer{layer_idx}"
    return [
        # Q, K, V projections: three (S x H) @ (H x H).
        GemmWorkloadItem(f"{p}.qkv", seq_len, hidden, hidden, repeats=3),
        # Attention scores per head: (S x d) @ (d x S).
        GemmWorkloadItem(f"{p}.scores", seq_len, head_dim, seq_len,
                         repeats=heads, weight_operand=False),
        # Attention-weighted values per head: (S x S) @ (S x d).
        GemmWorkloadItem(f"{p}.context", seq_len, seq_len, head_dim,
                         repeats=heads, weight_operand=False),
        # Output projection.
        GemmWorkloadItem(f"{p}.proj", seq_len, hidden, hidden),
        # Feed-forward up/down.
        GemmWorkloadItem(f"{p}.ffn_up", seq_len, hidden, ffn),
        GemmWorkloadItem(f"{p}.ffn_down", seq_len, ffn, hidden),
    ]


def bert_base(seq_len: int = 128) -> GemmWorkload:
    """BERT-base encoder stack: 12 layers, hidden 768, 12 heads, FFN 3072.

    At seq_len 128 this is ~11 GMAC per sequence -- the "compute
    expansive" workload the paper points at.
    """
    workload = GemmWorkload(name=f"bert_base_s{seq_len}")
    for layer in range(12):
        workload.items.extend(
            bert_encoder_layer(seq_len, 768, 12, 3072, layer)
        )
    return workload


def bert_tiny(seq_len: int = 64) -> GemmWorkload:
    """A 2-layer miniature (hidden 128, 2 heads) for fast experiments."""
    workload = GemmWorkload(name=f"bert_tiny_s{seq_len}")
    for layer in range(2):
        workload.items.extend(
            bert_encoder_layer(seq_len, 128, 2, 512, layer)
        )
    return workload


def project_gemm_workload(workload: GemmWorkload, perf_model, config):
    """Run every GEMM of a workload through a Mix-GEMM performance model.

    Returns the combined :class:`~repro.sim.perf.PerfResult` -- the
    paper-style projection of BERT on the Mix-GEMM SoC.
    """
    from repro.sim.perf import combine

    results = []
    for item in workload:
        r = perf_model.gemm(item.m, item.n, item.k, config)
        results.append(r.scaled(item.repeats) if item.repeats > 1 else r)
    return combine(results)
