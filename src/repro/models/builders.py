"""Runnable scaled-down variants of the six evaluated CNNs.

The full ImageNet networks exist here as *inventories* (shapes only, see
:mod:`repro.models.inventory`); training them is out of scope without the
dataset.  For end-to-end QAT experiments the same architectural motifs are
needed at laptop scale, so each builder produces a small trainable network
preserving its family's structure:

* AlexNet/VGG  -- plain conv stacks + FC head;
* ResNet       -- residual basic blocks with identity/projection shortcuts;
* MobileNet-V1 -- depthwise-separable blocks;
* RegNet-X     -- bottleneck-free group-conv residual blocks;
* EfficientNet -- MBConv with expansion, depthwise conv and squeeze-excite.

All linear layers are quantization-aware (:class:`QuantConv2d` /
:class:`QuantLinear`), so :func:`repro.quant.qat.set_model_bits` retargets
any built model to any aX-wY configuration.
"""

from __future__ import annotations

from typing import Callable

from repro.nn.autograd import Tensor
from repro.nn.layers import (
    BatchNorm2d,
    Flatten,
    GlobalAvgPool2d,
    LayerQuantSpec,
    MaxPool2d,
    Module,
    QuantConv2d,
    QuantLinear,
    ReLU,
    Sequential,
)


def _spec(act_bits: int | None, weight_bits: int | None,
          signed: bool = False) -> LayerQuantSpec:
    return LayerQuantSpec(act_bits=act_bits, weight_bits=weight_bits,
                          act_signed=signed)


class ConvBnRelu(Module):
    """Conv -> BN -> ReLU, the basic building unit."""

    def __init__(self, in_ch: int, out_ch: int, kernel: int, *,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 spec: LayerQuantSpec) -> None:
        super().__init__()
        self.conv = QuantConv2d(
            in_ch, out_ch, kernel, spec=spec, stride=stride,
            padding=padding, groups=groups, bias=False,
        )
        self.bn = BatchNorm2d(out_ch)
        self.act = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))


class BasicBlock(Module):
    """ResNet basic block: two 3x3 convs + shortcut."""

    def __init__(self, in_ch: int, out_ch: int, stride: int,
                 spec: LayerQuantSpec) -> None:
        super().__init__()
        self.conv1 = QuantConv2d(in_ch, out_ch, 3, spec=spec,
                                 stride=stride, padding=1, bias=False)
        self.bn1 = BatchNorm2d(out_ch)
        self.conv2 = QuantConv2d(out_ch, out_ch, 3, spec=spec,
                                 padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_ch)
        self.relu = ReLU()
        if stride != 1 or in_ch != out_ch:
            self.shortcut_conv = QuantConv2d(
                in_ch, out_ch, 1, spec=spec, stride=stride, bias=False
            )
            self.shortcut_bn = BatchNorm2d(out_ch)
            self._project = True
        else:
            self._project = False

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        identity = x
        if self._project:
            identity = self.shortcut_bn(self.shortcut_conv(x))
        return self.relu(out + identity)


class DepthwiseSeparable(Module):
    """MobileNet-V1 block: depthwise 3x3 + pointwise 1x1."""

    def __init__(self, in_ch: int, out_ch: int, stride: int,
                 spec: LayerQuantSpec) -> None:
        super().__init__()
        self.dw = ConvBnRelu(in_ch, in_ch, 3, stride=stride, padding=1,
                             groups=in_ch, spec=spec)
        self.pw = ConvBnRelu(in_ch, out_ch, 1, spec=spec)

    def forward(self, x: Tensor) -> Tensor:
        return self.pw(self.dw(x))


class RegNetBlock(Module):
    """RegNet-X block: 1x1 -> 3x3 group conv -> 1x1, residual."""

    def __init__(self, in_ch: int, out_ch: int, stride: int,
                 group_width: int, spec: LayerQuantSpec) -> None:
        super().__init__()
        groups = max(1, out_ch // group_width)
        self.a = ConvBnRelu(in_ch, out_ch, 1, spec=spec)
        self.b = ConvBnRelu(out_ch, out_ch, 3, stride=stride, padding=1,
                            groups=groups, spec=spec)
        self.c = QuantConv2d(out_ch, out_ch, 1, spec=spec, bias=False)
        self.c_bn = BatchNorm2d(out_ch)
        self.relu = ReLU()
        if stride != 1 or in_ch != out_ch:
            self.sc_conv = QuantConv2d(in_ch, out_ch, 1, spec=spec,
                                       stride=stride, bias=False)
            self.sc_bn = BatchNorm2d(out_ch)
            self._project = True
        else:
            self._project = False

    def forward(self, x: Tensor) -> Tensor:
        out = self.c_bn(self.c(self.b(self.a(x))))
        identity = x
        if self._project:
            identity = self.sc_bn(self.sc_conv(x))
        return self.relu(out + identity)


class SqueezeExcite(Module):
    """Channel attention: global pool -> reduce -> expand -> sigmoid."""

    def __init__(self, channels: int, reduced: int,
                 spec: LayerQuantSpec) -> None:
        super().__init__()
        self.pool = GlobalAvgPool2d()
        self.reduce = QuantLinear(channels, reduced, spec=spec)
        self.expand = QuantLinear(reduced, channels, spec=spec)
        self.relu = ReLU()
        self.channels = channels

    def forward(self, x: Tensor) -> Tensor:
        s = self.pool(x)
        s = self.relu(self.reduce(s))
        s = self.expand(s).sigmoid()
        n, c = s.shape
        return x * s.reshape(n, c, 1, 1)


class MBConv(Module):
    """EfficientNet inverted-residual block with squeeze-excite."""

    def __init__(self, in_ch: int, out_ch: int, *, expansion: int,
                 kernel: int, stride: int, spec: LayerQuantSpec) -> None:
        super().__init__()
        mid = in_ch * expansion
        self.expand = (
            ConvBnRelu(in_ch, mid, 1, spec=spec)
            if expansion != 1 else None
        )
        self.dw = ConvBnRelu(mid, mid, kernel, stride=stride,
                             padding=kernel // 2, groups=mid, spec=spec)
        self.se = SqueezeExcite(mid, max(1, in_ch // 4), spec)
        self.project = QuantConv2d(mid, out_ch, 1, spec=spec, bias=False)
        self.project_bn = BatchNorm2d(out_ch)
        self._residual = stride == 1 and in_ch == out_ch

    def forward(self, x: Tensor) -> Tensor:
        out = x if self.expand is None else self.expand(x)
        out = self.dw(out)
        out = self.se(out)
        out = self.project_bn(self.project(out))
        if self._residual:
            out = out + x
        return out


# ---------------------------------------------------------------------------
# Tiny network builders
# ---------------------------------------------------------------------------


def tiny_alexnet(spec: LayerQuantSpec, n_classes: int = 4,
                 in_channels: int = 1) -> Module:
    """Conv stack + FC head in the AlexNet spirit (12x12 inputs)."""
    in_spec = LayerQuantSpec(spec.act_bits, spec.weight_bits,
                             act_signed=True)
    return Sequential(
        QuantConv2d(in_channels, 8, 3, spec=in_spec, padding=1),
        ReLU(),
        MaxPool2d(2),
        QuantConv2d(8, 16, 3, spec=spec, padding=1),
        ReLU(),
        MaxPool2d(2),
        QuantConv2d(16, 16, 3, spec=spec, padding=1),
        ReLU(),
        Flatten(),
        QuantLinear(16 * 3 * 3, 32, spec=spec),
        ReLU(),
        QuantLinear(32, n_classes, spec=spec),
    )


def tiny_vgg16(spec: LayerQuantSpec, n_classes: int = 4,
               in_channels: int = 1) -> Module:
    """Double-conv stages + pooling, VGG style."""
    in_spec = LayerQuantSpec(spec.act_bits, spec.weight_bits,
                             act_signed=True)
    return Sequential(
        QuantConv2d(in_channels, 8, 3, spec=in_spec, padding=1),
        ReLU(),
        QuantConv2d(8, 8, 3, spec=spec, padding=1),
        ReLU(),
        MaxPool2d(2),
        QuantConv2d(8, 16, 3, spec=spec, padding=1),
        ReLU(),
        QuantConv2d(16, 16, 3, spec=spec, padding=1),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        QuantLinear(16 * 3 * 3, 32, spec=spec),
        ReLU(),
        QuantLinear(32, n_classes, spec=spec),
    )


class _TinyResNet(Module):
    def __init__(self, spec: LayerQuantSpec, n_classes: int,
                 in_channels: int) -> None:
        super().__init__()
        in_spec = LayerQuantSpec(spec.act_bits, spec.weight_bits,
                                 act_signed=True)
        self.stem = ConvBnRelu(in_channels, 8, 3, padding=1, spec=in_spec)
        self.block1 = BasicBlock(8, 8, 1, spec)
        self.block2 = BasicBlock(8, 16, 2, spec)
        self.pool = GlobalAvgPool2d()
        self.fc = QuantLinear(16, n_classes, spec=spec)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.block1(x)
        x = self.block2(x)
        return self.fc(self.pool(x))


def tiny_resnet18(spec: LayerQuantSpec, n_classes: int = 4,
                  in_channels: int = 1) -> Module:
    return _TinyResNet(spec, n_classes, in_channels)


class _TinyMobileNet(Module):
    def __init__(self, spec: LayerQuantSpec, n_classes: int,
                 in_channels: int) -> None:
        super().__init__()
        in_spec = LayerQuantSpec(spec.act_bits, spec.weight_bits,
                                 act_signed=True)
        self.stem = ConvBnRelu(in_channels, 8, 3, stride=2, padding=1,
                               spec=in_spec)
        self.ds1 = DepthwiseSeparable(8, 16, 1, spec)
        self.ds2 = DepthwiseSeparable(16, 32, 2, spec)
        self.pool = GlobalAvgPool2d()
        self.fc = QuantLinear(32, n_classes, spec=spec)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.ds1(x)
        x = self.ds2(x)
        return self.fc(self.pool(x))


def tiny_mobilenet_v1(spec: LayerQuantSpec, n_classes: int = 4,
                      in_channels: int = 1) -> Module:
    return _TinyMobileNet(spec, n_classes, in_channels)


class _TinyRegNet(Module):
    def __init__(self, spec: LayerQuantSpec, n_classes: int,
                 in_channels: int) -> None:
        super().__init__()
        in_spec = LayerQuantSpec(spec.act_bits, spec.weight_bits,
                                 act_signed=True)
        self.stem = ConvBnRelu(in_channels, 8, 3, padding=1, spec=in_spec)
        self.block1 = RegNetBlock(8, 16, 2, group_width=8, spec=spec)
        self.block2 = RegNetBlock(16, 16, 1, group_width=8, spec=spec)
        self.pool = GlobalAvgPool2d()
        self.fc = QuantLinear(16, n_classes, spec=spec)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.block1(x)
        x = self.block2(x)
        return self.fc(self.pool(x))


def tiny_regnet_x_400mf(spec: LayerQuantSpec, n_classes: int = 4,
                        in_channels: int = 1) -> Module:
    return _TinyRegNet(spec, n_classes, in_channels)


class _TinyEfficientNet(Module):
    def __init__(self, spec: LayerQuantSpec, n_classes: int,
                 in_channels: int) -> None:
        super().__init__()
        in_spec = LayerQuantSpec(spec.act_bits, spec.weight_bits,
                                 act_signed=True)
        self.stem = ConvBnRelu(in_channels, 8, 3, stride=2, padding=1,
                               spec=in_spec)
        self.mb1 = MBConv(8, 8, expansion=1, kernel=3, stride=1, spec=spec)
        self.mb2 = MBConv(8, 16, expansion=4, kernel=3, stride=2, spec=spec)
        self.pool = GlobalAvgPool2d()
        self.fc = QuantLinear(16, n_classes, spec=spec)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.mb1(x)
        x = self.mb2(x)
        return self.fc(self.pool(x))


def tiny_efficientnet_b0(spec: LayerQuantSpec, n_classes: int = 4,
                         in_channels: int = 1) -> Module:
    return _TinyEfficientNet(spec, n_classes, in_channels)


#: Registry of the scaled trainable variants, keyed like the inventories.
TINY_BUILDERS: dict[str, Callable[..., Module]] = {
    "alexnet": tiny_alexnet,
    "vgg16": tiny_vgg16,
    "resnet18": tiny_resnet18,
    "mobilenet_v1": tiny_mobilenet_v1,
    "regnet_x_400mf": tiny_regnet_x_400mf,
    "efficientnet_b0": tiny_efficientnet_b0,
}


def build_tiny(name: str, *, act_bits: int | None = 8,
               weight_bits: int | None = 8, n_classes: int = 4,
               in_channels: int = 1) -> Module:
    """Build a laptop-scale QAT-ready variant of one of the six CNNs."""
    try:
        builder = TINY_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; choose from {sorted(TINY_BUILDERS)}"
        ) from None
    return builder(_spec(act_bits, weight_bits), n_classes=n_classes,
                   in_channels=in_channels)
