"""Repo-invariant linter: ``ast``-level rules the reproduction lives by.

Thirteen rules, numbered flake8-style; each encodes an invariant the
codebase promises elsewhere (error hierarchy in ``core/errors.py``,
determinism in the test harness, integer-exactness of the kernel
modules, honest error handling, unit-annotated cost models, GEMM
execution routed through the backend dispatch, weight quantization
hoisted out of the per-call hot path):

* **REP001** -- every exception class derives from ``ReproError``;
* **REP002** -- no unseeded global RNG (``np.random.rand`` and friends,
  bare ``random.*``) outside test code;
* **REP003** -- integer kernel modules (``core/binseg.py``,
  ``core/packing.py``, ``core/microengine.py``, ``core/gemm.py``) may
  only produce floats inside functions explicitly annotated
  ``-> float``;
* **REP004** -- no bare ``except:`` and no ``except Exception: pass``;
* **REP005** -- cycle/energy-model functions in ``sim/perf.py`` and
  ``sim/energy.py`` document their units in the docstring;
* **REP006** -- no direct ``MicroEngine.push_pair`` driving outside
  ``core/``: everything else must go through ``MixGemm``/``mix_gemm``
  so the backend dispatch (``core/backend.py``) can route the call to
  the vectorized fast path or the event engine as fidelity demands;
* **REP007** -- no ``quantize()`` of a node's weight tensor inside an
  ``InferenceEngine`` per-call op handler (``_op_*``): weight
  quantization belongs in a dedicated helper (or the compiled plan)
  so compilation can hoist it; re-quantizing static weights on every
  call is exactly the overhead ``runtime/plan.py`` exists to remove;
* **REP008** -- no bare ``threading.Lock()``/``threading.RLock()``
  construction outside the lock factory (``core/locks.py``), the
  sanitizer (``analysis/concurrency/sanitizer.py``) and the
  grandfathered lock owners (``core/packcache.py``,
  ``runtime/serving.py``): production locks come from
  ``repro.core.locks.make_lock``/``make_rlock`` so the concurrency
  sanitizer (``repro serve --sanitize``) can wrap and trace them;
* **REP009** -- every ``queue.Queue()`` under ``runtime/`` must pass an
  explicit positive ``maxsize``, and ``queue.SimpleQueue()`` (always
  unbounded) is banned there outright: the serving stack promises
  bounded memory under overload (``docs/robustness.md``), and an
  unbounded queue silently voids admission control;
* **REP010** -- no hard-coded accumulator widths outside
  ``core/config.py``: integer literals passed as ``accmem_bits=``,
  assigned to ``accmem_bits``-named variables/defaults, or compared
  against ``accmem_bits``/``*_bits`` identifiers (the container width
  64 in particular) bypass ``DEFAULT_ACCMEM_BITS`` /
  ``ACCMEM_CONTAINER_BITS`` -- the range analyzer and the fast path
  must agree on wrap semantics through those single definitions;
* **REP011** -- every ``SharedMemory(...)`` construction under
  ``runtime/`` must be paired with ``close()``/``unlink()`` cleanup:
  either opened as a ``with`` context manager or inside a ``try``
  whose ``finally`` calls ``.close()``/``.unlink()``.  POSIX shared
  memory outlives the process -- a leaked segment stays in
  ``/dev/shm`` until reboot, which is exactly the failure mode the
  zero-copy plan distribution (``runtime/plan.py``) must never have.
* **REP012** -- on-disk cache/state writers (the autotuner result cache,
  ``tuning/cache.py``) must publish atomically: any function that
  ``open()``\\ s a file for writing (or calls ``Path.write_text``/
  ``write_bytes``) must also call ``os.replace`` -- serialize to a
  temporary file in the same directory, then rename.  A concurrent
  reader (or a crash mid-write) must see the old entry or the new one,
  never a torn file; ``compile_graph(..., tuned=True)`` reads this
  cache from live serving processes.
* **REP013** -- no hard-coded cycle/latency cost constants outside the
  ISA cost table homes (``core/isa.py``, ``core/config.py``) and the
  cost model that consumes them (``analysis/cost/``): a nonzero
  integer literal assigned to (or passed as, or defaulted into) a
  name ending in ``cost``/``cycle(s)``/``latency``/``overhead``
  forks the single source of truth the calibrated cost model is
  digest-keyed by -- a constant edited anywhere else would silently
  invalidate every persisted calibration and prediction.

Suppress a finding with a trailing ``# repro: noqa`` (everything on the
line) or ``# repro: noqa REP003`` / ``REP003,REP005`` (those rules).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.diagnostics import (
    AnalysisError,
    Diagnostic,
    DiagnosticReport,
    ERROR,
)

LINT_RULES: dict[str, str] = {
    "REP001": "exception classes must derive from ReproError",
    "REP002": "unseeded global RNG use outside tests",
    "REP003": "float arithmetic in an integer kernel module",
    "REP004": "bare except or silently swallowed Exception",
    "REP005": "cost-model function docstring does not state its units",
    "REP006": "direct MicroEngine.push_pair call outside core/",
    "REP007": "weight quantize() inside an engine per-call op handler",
    "REP008": "bare threading.Lock()/RLock() outside the lock factory",
    "REP009": "unbounded queue construction in the serving runtime",
    "REP010": "hard-coded accumulator width outside core/config.py",
    "REP011": "SharedMemory creation without close()/unlink() cleanup",
    "REP012": "non-atomic on-disk cache/state write (no os.replace "
              "publish)",
    "REP013": "hard-coded cycle/latency constant outside the ISA cost "
              "table",
    "REP000": "lint target is not parseable Python",
}

#: The one module allowed to spell accumulator widths as integer
#: literals (REP010): it *defines* DEFAULT_ACCMEM_BITS and
#: ACCMEM_CONTAINER_BITS and validates the legal range.
ACCMEM_CONFIG_SUFFIXES = ("core/config.py",)

#: Module path suffixes (POSIX form) allowed to construct raw locks
#: (REP008): the factory itself, the sanitizer whose wrappers *are*
#: the instrumentation, and the two grandfathered lock owners named in
#: the rule.
LOCK_FACTORY_SUFFIXES = (
    "core/locks.py",
    "analysis/concurrency/sanitizer.py",
    "core/packcache.py",
    "runtime/serving.py",
)

#: Module path suffixes (POSIX form) whose on-disk writes must publish
#: atomically (REP012): persistent caches read concurrently by live
#: serving processes.
ATOMIC_STATE_SUFFIXES = (
    "tuning/cache.py",
    "analysis/cost/calibrate.py",
)

#: Module path suffixes allowed to spell cycle/latency costs as
#: integer literals (REP013): the ISA cost table and its config-level
#: companion.  ``analysis/cost/`` (checked by substring, it is a
#: package) is also exempt -- it *derives* every term from the table.
CYCLE_COST_HOME_SUFFIXES = (
    "core/isa.py",
    "core/config.py",
)

#: Trailing ``_``-separated name tokens that mark a binding as a cycle
#: or latency cost (REP013).
_CYCLE_COST_TOKENS = frozenset({
    "cost", "cycle", "cycles", "latency", "overhead",
})

#: Module path suffixes (POSIX form) where REP003 applies.
KERNEL_MODULE_SUFFIXES = (
    "core/binseg.py",
    "core/packing.py",
    "core/microengine.py",
    "core/gemm.py",
)

#: Module path suffixes where REP005 applies.
COST_MODEL_SUFFIXES = (
    "sim/perf.py",
    "sim/energy.py",
)

#: Builtin exception names a class may subclass *alongside* a ReproError
#: lineage, but never alone (REP001).
_BUILTIN_EXCEPTIONS = frozenset({
    "BaseException", "Exception", "ArithmeticError", "AssertionError",
    "AttributeError", "BufferError", "EOFError", "FloatingPointError",
    "ImportError", "IndexError", "KeyError", "LookupError",
    "MemoryError", "NameError", "NotImplementedError", "OSError",
    "IOError", "OverflowError", "RecursionError", "ReferenceError",
    "RuntimeError", "StopIteration", "SyntaxError", "SystemError",
    "TypeError", "ValueError", "ZeroDivisionError",
})

#: ``np.random.<fn>`` calls that hit numpy's *global* RNG state.  The
#: seedable constructors (``default_rng``/``RandomState``/``Generator``/
#: ``SeedSequence``) are excluded and instead checked for a seed arg.
_NP_SEEDABLE = frozenset({
    "default_rng", "RandomState", "Generator", "SeedSequence",
    "BitGenerator", "PCG64", "Philox", "MT19937", "SFC64",
})

#: Functions of the stdlib ``random`` module's hidden global instance.
_STDLIB_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "randbytes",
    "seed",
})

#: Name fragments that mark a function as part of the cost model
#: (REP005 trigger), matched against ``_``-split name tokens.
_COST_NAME_TOKENS = frozenset({
    "energy", "cycle", "cycles", "watt", "watts", "power", "pj",
    "joule", "joules", "second", "seconds", "gops", "tops", "hz",
    "latency",
})

#: Substrings that count as a unit statement inside a docstring.
_UNIT_PATTERN = re.compile(
    r"pJ|joule|watt|\bW\b|GOPS|TOPS|cycle|second|\b[GMk]?Hz\b|\bmW\b|"
    r"\bms\b|\bns\b|\bus\b",
)

_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa\b[:\s]*(?P<rules>(?:REP\d{3}[,\s]*)*)",
)


def _noqa_rules(line: str) -> frozenset[str] | None:
    """Rules suppressed on ``line``; empty set = all; None = no noqa."""
    match = _NOQA_PATTERN.search(line)
    if match is None:
        return None
    return frozenset(re.findall(r"REP\d{3}", match.group("rules")))


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for an Attribute/Name chain, '' for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def is_test_path(path: str) -> bool:
    """True for files REP002 exempts (test and conftest modules)."""
    p = Path(path)
    if any(part in ("tests", "test") for part in p.parts):
        return True
    return p.name.startswith("test_") or p.name == "conftest.py"


def _is_weight_tensor_subscript(expr: ast.AST) -> bool:
    """True for ``<anything>.tensors["weight"]``."""
    return (isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Attribute)
            and expr.value.attr == "tensors"
            and isinstance(expr.slice, ast.Constant)
            and expr.slice.value == "weight")


class RepoInvariantVisitor(ast.NodeVisitor):
    """Single-pass visitor emitting REP001-REP011 diagnostics."""

    def __init__(self, path: str = "") -> None:
        self.path = path
        self.diagnostics: list[Diagnostic] = []
        posix = Path(path).as_posix() if path else ""
        self._kernel = posix.endswith(KERNEL_MODULE_SUFFIXES)
        self._cost_model = posix.endswith(COST_MODEL_SUFFIXES)
        self._test_file = is_test_path(path) if path else False
        self._core_file = "core" in Path(path).parts if path else False
        self._lock_factory = posix.endswith(LOCK_FACTORY_SUFFIXES)
        self._accmem_home = posix.endswith(ACCMEM_CONFIG_SUFFIXES)
        self._atomic_state = posix.endswith(ATOMIC_STATE_SUFFIXES)
        self._cycle_cost_home = (posix.endswith(CYCLE_COST_HOME_SUFFIXES)
                                 or "analysis/cost/" in posix)
        self._runtime_file = ("runtime" in Path(path).parts
                              if path else False)
        #: Local names bound to threading.Lock/RLock by imports.
        self._lock_aliases: set[str] = set()
        #: Local names bound to queue.Queue/SimpleQueue by imports
        #: (REP009), mapped back to the canonical class name.
        self._queue_aliases: dict[str, str] = {}
        #: Stack of ``returns -> float`` flags for enclosing functions.
        self._float_ok: list[bool] = []
        #: Stack of enclosing class names (REP007 scoping).
        self._class_stack: list[str] = []
        #: ``id()`` of SharedMemory Call nodes proven cleanup-paired
        #: (REP011): inside a ``with`` item or a ``try`` whose
        #: ``finally`` closes/unlinks.  Parents are visited before
        #: children, so the set is populated before ``visit_Call``
        #: reaches the construction.
        self._shm_safe: set[int] = set()

    # -- plumbing ----------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str,
              hint: str = "") -> None:
        self.diagnostics.append(Diagnostic(
            rule=rule, severity=ERROR, message=message, hint=hint,
            path=self.path, line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
        ))

    # -- REP001 ------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        base_names = [_dotted(b) for b in node.bases]
        simple = [b.rsplit(".", 1)[-1] for b in base_names if b]
        is_exception = any(
            b in _BUILTIN_EXCEPTIONS or b.endswith("Error")
            or b.endswith("Exception") or b.endswith("Warning")
            for b in simple
        )
        blessed = any(
            b == "ReproError"
            or (b.endswith(("Error", "Exception"))
                and b not in _BUILTIN_EXCEPTIONS)
            for b in simple
        )
        if (is_exception and not blessed
                and node.name != "ReproError"
                and not node.name.endswith("Warning")):
            self._emit(
                "REP001", node,
                f"exception class {node.name} does not derive from "
                f"ReproError",
                hint="add ReproError as a base (keep the stdlib base "
                     "for backwards-compatible except clauses)",
            )
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- REP008 ------------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "threading":
            for alias in node.names:
                if alias.name in ("Lock", "RLock"):
                    self._lock_aliases.add(alias.asname or alias.name)
        if node.module == "queue":
            for alias in node.names:
                if alias.name in ("Queue", "SimpleQueue", "LifoQueue",
                                  "PriorityQueue"):
                    self._queue_aliases[alias.asname or alias.name] = \
                        alias.name
        self.generic_visit(node)

    def _check_lock_construction(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        direct = name in ("threading.Lock", "threading.RLock")
        aliased = (isinstance(node.func, ast.Name)
                   and node.func.id in self._lock_aliases)
        if direct or aliased:
            self._emit(
                "REP008", node,
                f"bare {name or node.func.id}() construction outside "
                f"the lock factory",
                hint="use repro.core.locks.make_lock/make_rlock so "
                     "'repro serve --sanitize' can wrap the lock",
            )

    # -- REP009 ------------------------------------------------------

    def _check_queue_construction(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        cls = ""
        if name.startswith("queue.") and name.count(".") == 1:
            cls = name.split(".", 1)[1]
        elif isinstance(node.func, ast.Name):
            cls = self._queue_aliases.get(node.func.id, "")
        if cls == "SimpleQueue":
            self._emit(
                "REP009", node,
                "SimpleQueue cannot be bounded; the serving runtime "
                "requires bounded queues",
                hint="use queue.Queue(maxsize=...) so overload hits "
                     "admission control instead of growing memory",
            )
            return
        if cls not in ("Queue", "LifoQueue", "PriorityQueue"):
            return
        maxsize: ast.AST | None = node.args[0] if node.args else None
        if maxsize is None:
            for kw in node.keywords:
                if kw.arg == "maxsize":
                    maxsize = kw.value
        if maxsize is None:
            self._emit(
                "REP009", node,
                f"{cls}() without an explicit maxsize is unbounded",
                hint="pass maxsize=<bound> (queue growth under overload "
                     "must hit admission control, not memory)",
            )
            return
        if isinstance(maxsize, ast.Constant) \
                and isinstance(maxsize.value, int) \
                and maxsize.value <= 0:
            self._emit(
                "REP009", node,
                f"{cls}(maxsize={maxsize.value}) disables the bound "
                f"(stdlib treats <= 0 as infinite)",
                hint="pass a positive maxsize",
            )

    # -- REP011 ------------------------------------------------------

    @staticmethod
    def _shm_calls(node: ast.AST):
        """Yield ``SharedMemory(...)`` Call nodes anywhere under ``node``."""
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Call)
                    and _dotted(sub.func).rsplit(".", 1)[-1]
                    == "SharedMemory"):
                yield sub

    def visit_With(self, node: ast.With) -> None:
        # A SharedMemory opened as a context-manager item is
        # cleanup-paired by construction (``__exit__`` closes it).
        for item in node.items:
            for call in self._shm_calls(item.context_expr):
                self._shm_safe.add(id(call))
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        for item in node.items:
            for call in self._shm_calls(item.context_expr):
                self._shm_safe.add(id(call))
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        # A try whose finally calls .close()/.unlink() blesses every
        # SharedMemory construction in its protected regions.
        cleanup = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in ("close", "unlink")
            for stmt in node.finalbody for sub in ast.walk(stmt))
        if cleanup:
            for region in (node.body, node.handlers, node.orelse):
                for stmt in region:
                    for call in self._shm_calls(stmt):
                        self._shm_safe.add(id(call))
        self.generic_visit(node)

    def _check_shm_construction(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name.rsplit(".", 1)[-1] != "SharedMemory":
            return
        if id(node) in self._shm_safe:
            return
        self._emit(
            "REP011", node,
            "SharedMemory segment opened without paired "
            "close()/unlink() cleanup",
            hint="open the segment as a context manager or inside a "
                 "try whose finally calls close() (and unlink() on "
                 "the owning side): a leaked segment survives the "
                 "process in /dev/shm",
        )

    # -- REP012 ------------------------------------------------------

    @staticmethod
    def _own_scope(fn):
        """Yield ``fn`` body nodes without descending into nested defs.

        Atomicity is a per-function discipline: a nested helper that
        writes is its own publisher and is checked on its own visit, so
        the enclosing function's ``os.replace`` must not bless it (nor
        its missing one taint the parent twice).
        """
        stack = list(fn.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_write_open(node: ast.Call) -> bool:
        """True for ``open(..., "w"/"a"/"x"/"+...")`` with a literal mode."""
        mode: ast.AST | None = node.args[1] if len(node.args) > 1 else None
        if mode is None:
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
        return (isinstance(mode, ast.Constant)
                and isinstance(mode.value, str)
                and any(ch in mode.value for ch in "wax+"))

    def _check_atomic_writes(self, fn) -> None:
        """Flag write-mode file opens in a function with no os.replace."""
        writes: list[tuple[ast.Call, str]] = []
        publishes = False
        for sub in self._own_scope(fn):
            if not isinstance(sub, ast.Call):
                continue
            name = _dotted(sub.func)
            tail = name.rsplit(".", 1)[-1]
            if name in ("os.replace", "os.rename") or (
                    isinstance(sub.func, ast.Name)
                    and name in ("replace", "rename")):
                publishes = True
            elif tail == "open" and self._is_write_open(sub):
                writes.append((sub, "open() for writing"))
            elif tail in ("write_text", "write_bytes") \
                    and isinstance(sub.func, ast.Attribute):
                writes.append((sub, f"{tail}()"))
        if publishes:
            return
        for sub, what in writes:
            self._emit(
                "REP012", sub,
                f"{what} in {fn.name}() never publishes via os.replace",
                hint="persistent cache/state files must be written to a "
                     "temporary file in the same directory and renamed "
                     "with os.replace: concurrent readers must see the "
                     "old entry or the new one, never a torn file",
            )

    # -- REP010 ------------------------------------------------------

    @staticmethod
    def _is_int_literal(node: ast.AST) -> bool:
        return (isinstance(node, ast.Constant)
                and isinstance(node.value, int)
                and not isinstance(node.value, bool))

    @property
    def _rep010_active(self) -> bool:
        return not self._test_file and not self._accmem_home

    def _emit_accmem(self, node: ast.AST, message: str) -> None:
        self._emit(
            "REP010", node, message,
            hint="import DEFAULT_ACCMEM_BITS / ACCMEM_CONTAINER_BITS "
                 "from repro.core.config: the analyzer, fast path and "
                 "plan compiler must agree on wrap widths through one "
                 "definition",
        )

    def _check_accmem_keyword(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg == "accmem_bits" and self._is_int_literal(kw.value):
                self._emit_accmem(
                    kw.value,
                    f"accmem_bits={kw.value.value} hard-codes the "
                    f"accumulator width at a call site",
                )

    def _check_accmem_assign(self, target: ast.AST,
                             value: ast.AST | None) -> None:
        name = _dotted(target).rsplit(".", 1)[-1]
        if name.lower().endswith("accmem_bits") and value is not None \
                and self._is_int_literal(value):
            self._emit_accmem(
                value,
                f"{name} = {value.value} hard-codes the accumulator "
                f"width",
            )

    def _check_accmem_compare(self, node: ast.Compare) -> None:
        sides = [node.left, *node.comparators]
        names = [_dotted(s).rsplit(".", 1)[-1] for s in sides]
        for side, name in zip(sides, names):
            if not self._is_int_literal(side):
                continue
            for other in names:
                if not other:
                    continue
                if other.lower().endswith("accmem_bits"):
                    self._emit_accmem(
                        node,
                        f"comparing {other} against the literal "
                        f"{side.value}",
                    )
                    return
                if side.value == 64 and (
                        other == "bits" or other.endswith("_bits")):
                    self._emit_accmem(
                        node,
                        f"comparing {other} against the literal 64 "
                        f"assumes the int64 container width",
                    )
                    return

    # -- REP013 ------------------------------------------------------

    @property
    def _rep013_active(self) -> bool:
        return not self._test_file and not self._cycle_cost_home

    @classmethod
    def _is_cycle_cost_name(cls, name: str) -> bool:
        return bool(name) and \
            name.lower().rsplit("_", 1)[-1] in _CYCLE_COST_TOKENS

    def _emit_cycle_cost(self, node: ast.AST, message: str) -> None:
        self._emit(
            "REP013", node, message,
            hint="cycle/latency constants live in the ISA cost table "
                 "(core/isa.py KernelCosts / BS_*_COST) or "
                 "core/config.py: the calibrated cost model is keyed "
                 "by their content digest, so a constant forked "
                 "elsewhere silently invalidates every prediction",
        )

    def _check_cycle_cost_assign(self, target: ast.AST,
                                 value: ast.AST | None) -> None:
        name = _dotted(target).rsplit(".", 1)[-1]
        if self._is_cycle_cost_name(name) and value is not None \
                and self._is_int_literal(value) and value.value != 0:
            self._emit_cycle_cost(
                value,
                f"{name} = {value.value} hard-codes a cycle/latency "
                f"cost outside the ISA cost table",
            )

    def _check_cycle_cost_keyword(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg and self._is_cycle_cost_name(kw.arg) \
                    and self._is_int_literal(kw.value) \
                    and kw.value.value != 0:
                self._emit_cycle_cost(
                    kw.value,
                    f"{kw.arg}={kw.value.value} hard-codes a "
                    f"cycle/latency cost at a call site",
                )

    def _check_cycle_cost_defaults(self, node) -> None:
        args = node.args
        pos = args.posonlyargs + args.args
        for arg, default in zip(pos[len(pos) - len(args.defaults):],
                                args.defaults):
            self._check_cycle_cost_assign(ast.Name(id=arg.arg), default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            self._check_cycle_cost_assign(ast.Name(id=arg.arg), default)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._rep010_active:
            for target in node.targets:
                self._check_accmem_assign(target, node.value)
        if self._rep013_active:
            for target in node.targets:
                self._check_cycle_cost_assign(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._rep010_active:
            self._check_accmem_assign(node.target, node.value)
        if self._rep013_active:
            self._check_cycle_cost_assign(node.target, node.value)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._rep010_active:
            self._check_accmem_compare(node)
        self.generic_visit(node)

    def _check_accmem_defaults(self, node) -> None:
        args = node.args
        pos = args.posonlyargs + args.args
        for arg, default in zip(pos[len(pos) - len(args.defaults):],
                                args.defaults):
            self._check_accmem_assign(ast.Name(id=arg.arg), default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            self._check_accmem_assign(ast.Name(id=arg.arg), default)

    # -- REP002 ------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if not self._test_file:
            self._check_rng_call(node)
        if self._rep010_active:
            self._check_accmem_keyword(node)
        if self._rep013_active:
            self._check_cycle_cost_keyword(node)
        if not self._test_file and not self._lock_factory:
            self._check_lock_construction(node)
        if self._runtime_file and not self._test_file:
            self._check_queue_construction(node)
            self._check_shm_construction(node)
        if (not self._test_file and not self._core_file
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "push_pair"):
            self._emit(
                "REP006", node,
                "direct MicroEngine.push_pair issue loop outside core/",
                hint="drive GEMMs through MixGemm/mix_gemm so the "
                     "backend dispatch can pick the fast path",
            )
        if self._kernel and isinstance(node.func, ast.Name) \
                and node.func.id == "float" and not self._in_float_fn():
            self._emit(
                "REP003", node,
                "float() conversion in an integer kernel module",
                hint="move the conversion into a function annotated "
                     "'-> float'",
            )
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if not name:
            return
        parts = name.split(".")
        # numpy's module-level RNG: np.random.rand / numpy.random.rand
        if len(parts) >= 3 and parts[-2] == "random" \
                and parts[0] in ("np", "numpy"):
            fn = parts[-1]
            if fn not in _NP_SEEDABLE:
                self._emit(
                    "REP002", node,
                    f"{name}() draws from numpy's global unseeded RNG",
                    hint="thread an np.random.default_rng(seed) "
                         "Generator through instead",
                )
                return
        # Seedable constructors called without a seed are still unseeded.
        if parts[-1] in ("default_rng", "RandomState") \
                and "random" in parts and not node.args \
                and not node.keywords:
            self._emit(
                "REP002", node,
                f"{name}() without a seed is nondeterministic",
                hint="pass an explicit integer seed",
            )
            return
        # stdlib random module's hidden global instance.
        if len(parts) == 2 and parts[0] == "random" \
                and parts[1] in _STDLIB_RANDOM_FNS:
            self._emit(
                "REP002", node,
                f"{name}() uses the stdlib global RNG",
                hint="use random.Random(seed) or an explicit numpy "
                     "Generator",
            )

    # -- REP003 ------------------------------------------------------

    def _in_float_fn(self) -> bool:
        return bool(self._float_ok) and self._float_ok[-1]

    def _returns_float(self, node) -> bool:
        r = node.returns
        return isinstance(r, ast.Name) and r.id == "float"

    def _visit_function(self, node) -> None:
        self._float_ok.append(self._returns_float(node))
        if self._cost_model:
            self._check_cost_model_docstring(node)
        if self._atomic_state and not self._test_file:
            self._check_atomic_writes(node)
        if self._rep010_active:
            self._check_accmem_defaults(node)
        if self._rep013_active:
            self._check_cycle_cost_defaults(node)
        if (self._class_stack
                and self._class_stack[-1] == "InferenceEngine"
                and node.name.startswith("_op_")):
            self._check_handler_weight_quantize(node)
        self.generic_visit(node)
        self._float_ok.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if self._kernel and isinstance(node.value, float) \
                and not self._in_float_fn():
            self._emit(
                "REP003", node,
                f"float literal {node.value!r} in an integer kernel "
                f"module",
                hint="integer kernels must stay bit-exact; floats are "
                     "allowed only in functions annotated '-> float'",
            )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self._kernel and isinstance(node.op, ast.Div) \
                and not self._in_float_fn():
            self._emit(
                "REP003", node,
                "true division '/' always produces a float",
                hint="use '//' for exact integer math, or annotate the "
                     "enclosing function '-> float'",
            )
        self.generic_visit(node)

    # -- REP007 ------------------------------------------------------

    def _check_handler_weight_quantize(self, fn) -> None:
        """Flag ``quantize()`` of weight tensors in an ``_op_*`` body.

        The handler body is rescanned rather than checked during the
        main walk because the rule needs two passes over the same
        scope: names bound from ``node.tensors["weight"]`` first, the
        ``quantize(...)`` call sites second (the assignment always
        precedes the call textually, but not necessarily in AST visit
        order once closures are involved).
        """
        weight_names: set[str] = set()
        for sub in ast.walk(fn):
            if (isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and _is_weight_tensor_subscript(sub.value)):
                weight_names.add(sub.targets[0].id)
        for sub in ast.walk(fn):
            if not isinstance(sub, ast.Call) or not sub.args:
                continue
            callee = _dotted(sub.func).rsplit(".", 1)[-1]
            if callee != "quantize":
                continue
            arg = sub.args[0]
            if _is_weight_tensor_subscript(arg) or (
                    isinstance(arg, ast.Name)
                    and arg.id in weight_names):
                self._emit(
                    "REP007", sub,
                    f"per-call weight quantize() inside "
                    f"InferenceEngine.{fn.name}()",
                    hint="static weights must be quantized once, not "
                         "per inference call: route through a helper "
                         "like _quant_weights() so compiled plans can "
                         "hoist it",
                )

    # -- REP004 ------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                "REP004", node,
                "bare 'except:' catches SystemExit and KeyboardInterrupt",
                hint="name the exceptions this handler expects",
            )
        else:
            caught = _dotted(node.type).rsplit(".", 1)[-1]
            only_pass = all(isinstance(s, ast.Pass) for s in node.body)
            if caught in ("Exception", "BaseException") and only_pass:
                self._emit(
                    "REP004", node,
                    f"'except {caught}: pass' silently swallows every "
                    f"failure",
                    hint="narrow the exception type or at least record "
                         "the failure",
                )
        self.generic_visit(node)

    # -- REP005 ------------------------------------------------------

    def _check_cost_model_docstring(self, node) -> None:
        if node.name.startswith("_"):
            return
        tokens = set(node.name.lower().split("_"))
        if not tokens & _COST_NAME_TOKENS:
            return
        doc = ast.get_docstring(node) or ""
        if not _UNIT_PATTERN.search(doc):
            self._emit(
                "REP005", node,
                f"cost-model function {node.name}() does not state its "
                f"units in a docstring",
                hint="say what the number means: cycles, seconds, pJ, "
                     "W, GOPS/W, ...",
            )


def lint_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Lint one module's source text; applies ``# repro: noqa``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Diagnostic(
            rule="REP000", severity=ERROR,
            message=f"cannot parse: {exc.msg}",
            path=path, line=exc.lineno or 0, col=exc.offset or 1,
        )]
    visitor = RepoInvariantVisitor(path)
    visitor.visit(tree)
    lines = source.splitlines()
    kept: list[Diagnostic] = []
    for diag in visitor.diagnostics:
        if 1 <= diag.line <= len(lines):
            rules = _noqa_rules(lines[diag.line - 1])
            if rules is not None and (not rules or diag.rule in rules):
                continue
        kept.append(diag)
    return kept


def lint_file(path: str | Path) -> list[Diagnostic]:
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read lint target {p}: {exc}") from exc
    return lint_source(source, str(p))


def iter_python_files(target: str | Path):
    """Yield ``.py`` files under ``target`` (a file or a directory)."""
    p = Path(target)
    if p.is_file():
        yield p
    elif p.is_dir():
        yield from sorted(p.rglob("*.py"))
    else:
        raise AnalysisError(f"lint target {p} does not exist")


def lint_paths(targets) -> DiagnosticReport:
    """Lint every ``.py`` file under the given files/directories."""
    report = DiagnosticReport()
    for target in targets:
        for path in iter_python_files(target):
            report.extend(lint_file(path))
    return report


__all__ = [
    "ATOMIC_STATE_SUFFIXES",
    "CYCLE_COST_HOME_SUFFIXES",
    "KERNEL_MODULE_SUFFIXES",
    "COST_MODEL_SUFFIXES",
    "LINT_RULES",
    "LOCK_FACTORY_SUFFIXES",
    "RepoInvariantVisitor",
    "is_test_path",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
