"""Static analysis for the Mix-GEMM reproduction.

Two cooperating layers, surfaced together through ``repro check``:

* **Contract checker** (:mod:`repro.analysis.contracts`) -- proves,
  over a deployment :class:`~repro.runtime.graph.GraphModel` plus a
  :class:`~repro.core.config.MixGemmConfig`, that the dynamic engine
  cannot overflow its AccMem accumulators (Eq. 5 worst-case bound over
  the im2col-lowered K), deadlock in the Source Buffers, or trip over
  malformed quantization metadata -- without executing a single GEMM.
* **Repo-invariant linter** (:mod:`repro.analysis.astlint`) -- an
  ``ast``-level linter enforcing the REP001-REP005 house rules (error
  hierarchy, seeded RNG, integer-exact kernels, honest error handling,
  unit-annotated cost models).

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` records
collected into a :class:`~repro.analysis.diagnostics.DiagnosticReport`,
renderable as text, JSON, or SARIF 2.1.0
(:mod:`repro.analysis.sarif`) for CI code-scanning upload.
"""

from __future__ import annotations

from repro.analysis.astlint import (
    LINT_RULES,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.concurrency import (
    CONC_RULES,
    ConcurrencyAnalysis,
    analyze_concurrency,
    check_concurrency,
)
from repro.analysis.contracts import (
    CONTRACT_RULES,
    check_config,
    check_graph,
    check_graph_file,
    check_graph_structure,
    check_overflow,
)
from repro.analysis.diagnostics import (
    AnalysisError,
    Diagnostic,
    DiagnosticReport,
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    severity_rank,
)
from repro.analysis.sarif import to_sarif, to_sarif_json

#: Every rule id ``repro check`` can emit.
ALL_RULES: dict[str, str] = {**CONTRACT_RULES, **LINT_RULES,
                             **CONC_RULES}

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "CONC_RULES",
    "CONTRACT_RULES",
    "ConcurrencyAnalysis",
    "Diagnostic",
    "DiagnosticReport",
    "ERROR",
    "INFO",
    "LINT_RULES",
    "SEVERITIES",
    "WARNING",
    "analyze_concurrency",
    "check_concurrency",
    "check_config",
    "check_graph",
    "check_graph_file",
    "check_graph_structure",
    "check_overflow",
    "lint_file",
    "lint_paths",
    "lint_source",
    "severity_rank",
    "to_sarif",
    "to_sarif_json",
]
