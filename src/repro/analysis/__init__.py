"""Static analysis for the Mix-GEMM reproduction.

Cooperating layers, surfaced together through ``repro check``:

* **Contract checker** (:mod:`repro.analysis.contracts`) -- proves,
  over a deployment :class:`~repro.runtime.graph.GraphModel` plus a
  :class:`~repro.core.config.MixGemmConfig`, that the dynamic engine
  cannot overflow its AccMem accumulators (Eq. 5 worst-case bound over
  the im2col-lowered K), deadlock in the Source Buffers, or trip over
  malformed quantization metadata -- without executing a single GEMM.
* **Repo-invariant linter** (:mod:`repro.analysis.astlint`) -- an
  ``ast``-level linter enforcing the REP001-REP010 house rules (error
  hierarchy, seeded RNG, integer-exact kernels, honest error handling,
  unit-annotated cost models, single-definition accumulator widths).
* **Range analyzer** (:mod:`repro.analysis.ranges`) -- an abstract
  interpreter propagating interval/affine domains through the graph
  with exact runtime semantics (im2col lowering, per-kc-block
  two's-complement wrap, fused activations), proving per-layer
  accumulator requirements tighter than the Eq. 5 worst case,
  verifying compiled plans preserve those ranges, and cross-checking
  them against observed runtime extrema.
* **Cost analyzer** (:mod:`repro.analysis.cost`) -- a closed-form,
  calibration-verified cycle model predicting per-layer cycles,
  instruction counts and stall breakdowns without executing the event
  engine; powers ``repro check --cost`` (COST-* diagnostics), the
  autotuner's analytic pre-filter and ``predict_graph_cycles()`` over
  compiled plans.

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` records
collected into a :class:`~repro.analysis.diagnostics.DiagnosticReport`,
renderable as text, JSON, or SARIF 2.1.0
(:mod:`repro.analysis.sarif`) for CI code-scanning upload.
"""

from __future__ import annotations

from repro.analysis.astlint import (
    LINT_RULES,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.concurrency import (
    CONC_RULES,
    ConcurrencyAnalysis,
    analyze_concurrency,
    check_concurrency,
)
from repro.analysis.contracts import (
    CONTRACT_RULES,
    check_config,
    check_graph,
    check_graph_file,
    check_graph_structure,
    check_overflow,
)
from repro.analysis.cost import (
    COST_RULES,
    check_cost,
    check_cost_file,
    predict_gemm,
    predict_graph_cycles,
)
from repro.analysis.diagnostics import (
    AnalysisError,
    Diagnostic,
    DiagnosticReport,
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    severity_rank,
)
from repro.analysis.ranges import (
    RANGES_RULES,
    RangeAnalysis,
    analyze_graph,
    check_ranges,
    check_ranges_file,
    crosscheck_ranges,
    observing_ranges,
    verify_graph_plans,
    verify_plan,
)
from repro.analysis.sarif import to_sarif, to_sarif_json

#: Every rule id ``repro check`` can emit.  Later registries must not
#: clobber earlier ones -- shared ids (``GRF-PARSE``) keep their first
#: registration, matching the SARIF driver's dedup.
ALL_RULES: dict[str, str] = {}
for _registry in (CONTRACT_RULES, LINT_RULES, CONC_RULES, RANGES_RULES,
                  COST_RULES):
    for _rid, _description in _registry.items():
        ALL_RULES.setdefault(_rid, _description)
del _registry, _rid, _description

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "CONC_RULES",
    "CONTRACT_RULES",
    "COST_RULES",
    "ConcurrencyAnalysis",
    "Diagnostic",
    "DiagnosticReport",
    "ERROR",
    "INFO",
    "LINT_RULES",
    "RANGES_RULES",
    "RangeAnalysis",
    "SEVERITIES",
    "WARNING",
    "analyze_concurrency",
    "analyze_graph",
    "check_concurrency",
    "check_config",
    "check_cost",
    "check_cost_file",
    "check_graph",
    "check_graph_file",
    "check_graph_structure",
    "check_overflow",
    "check_ranges",
    "check_ranges_file",
    "crosscheck_ranges",
    "lint_file",
    "lint_paths",
    "lint_source",
    "observing_ranges",
    "predict_gemm",
    "predict_graph_cycles",
    "severity_rank",
    "verify_graph_plans",
    "verify_plan",
    "to_sarif",
    "to_sarif_json",
]
