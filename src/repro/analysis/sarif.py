"""SARIF 2.1.0 emitter for :class:`~repro.analysis.diagnostics.DiagnosticReport`.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; the CI ``check`` job uploads the file this module produces.
Only the core subset is emitted -- one ``run``, one ``tool.driver``,
rule metadata for every rule that *can* fire, and one ``result`` per
diagnostic -- but it validates against the 2.1.0 schema shape the
GitHub/SARIF viewers require.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import (
    DiagnosticReport,
    ERROR,
    INFO,
    WARNING,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-check"

#: diagnostic severity -> SARIF result level.
LEVEL_FOR_SEVERITY = {
    ERROR: "error",
    WARNING: "warning",
    INFO: "note",
}


def _all_rules() -> dict[str, str]:
    """Every rule id the tool can emit, with its one-line description.

    A rule id may be registered by more than one pass (``GRF-PARSE`` is
    shared by the graph contracts and the range analyzer: both read the
    same model file).  The *first* registration wins -- a single SARIF
    driver must list each rule exactly once, and clobbering would make
    the metadata depend on pass ordering.
    """
    from repro.analysis.astlint import LINT_RULES
    from repro.analysis.concurrency.checker import CONC_RULES
    from repro.analysis.contracts import CONTRACT_RULES
    from repro.analysis.cost import COST_RULES
    from repro.analysis.ranges import RANGES_RULES

    merged: dict[str, str] = {}
    for registry in (CONTRACT_RULES, LINT_RULES, CONC_RULES,
                     RANGES_RULES, COST_RULES):
        for rid, description in registry.items():
            merged.setdefault(rid, description)
    return merged


def _location(diag) -> dict:
    physical: dict = {
        "artifactLocation": {"uri": diag.path or "<unknown>"},
    }
    if diag.line:
        region: dict = {"startLine": diag.line}
        if diag.col:
            region["startColumn"] = diag.col
        physical["region"] = region
    location: dict = {"physicalLocation": physical}
    if diag.node:
        location["logicalLocations"] = [
            {"name": diag.node, "kind": "member"},
        ]
    return location


def to_sarif(report: DiagnosticReport, *, tool_version: str = "") -> dict:
    """Render a report as a SARIF 2.1.0 log object (a plain dict)."""
    rules = _all_rules()
    # A result whose rule id no registry declared (e.g. from an external
    # pass) still must resolve: synthesize a driver entry so every
    # result carries a valid ruleIndex instead of a dangling ruleId.
    for diag in report.diagnostics:
        rules.setdefault(diag.rule, "(no registered description)")
    rule_ids = sorted(rules)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}

    results = []
    for diag in report.sorted():
        message = diag.message
        if diag.hint:
            message = f"{message} (hint: {diag.hint})"
        result: dict = {
            "ruleId": diag.rule,
            "level": LEVEL_FOR_SEVERITY[diag.severity],
            "message": {"text": message},
            "locations": [_location(diag)],
            "ruleIndex": rule_index[diag.rule],
        }
        results.append(result)

    driver: dict = {
        "name": TOOL_NAME,
        "informationUri": "https://github.com/mixgemm/repro",
        "rules": [
            {
                "id": rid,
                "shortDescription": {"text": rules[rid]},
                "helpUri": "docs/static_analysis.md",
            }
            for rid in rule_ids
        ],
    }
    if tool_version:
        driver["version"] = tool_version

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def to_sarif_json(report: DiagnosticReport, *,
                  tool_version: str = "") -> str:
    """:func:`to_sarif`, serialized with stable 2-space indentation."""
    return json.dumps(to_sarif(report, tool_version=tool_version),
                      indent=2, sort_keys=False)


__all__ = [
    "LEVEL_FOR_SEVERITY",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "TOOL_NAME",
    "to_sarif",
    "to_sarif_json",
]
