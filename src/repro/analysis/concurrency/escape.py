"""Escape analysis: parent mutation of objects handed to workers.

When a local object is passed into ``ThreadPoolExecutor.submit(...)``,
``threading.Thread(target=..., args=(...,))`` or a ``*Worker(...)``
constructor, ownership transfers to the worker thread: the parent no
longer knows *when* the worker reads it.  Any later attribute mutation
of that object by the parent in the same function races with the
worker and is reported as **CONC-ESCAPED-MUTATION**.

The pass is function-local and name-based: it tracks simple names, the
most common way a request/task object is built and handed off.  A name
is "escaped" from the line of the hand-off onward; rebinding the name
(``obj = ...``) un-escapes it (the parent now holds a different
object).  Mutations *before* the hand-off are the normal build-then-
publish pattern and are not flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic, ERROR

from .model import FunctionNode, ModuleModel, THREAD_SPAWNERS, _dotted


@dataclass(frozen=True)
class EscapeSite:
    """Where a local name was handed to a worker."""

    name: str
    line: int
    via: str


def _escaping_names(node: ast.Call) -> list[tuple[str, str]]:
    """``(name, via)`` pairs this call hands to a worker, if any."""
    escapes: list[tuple[str, str]] = []
    func_name = _dotted(node.func).rsplit(".", 1)[-1]

    if isinstance(node.func, ast.Attribute) and node.func.attr == "submit":
        # submit(fn, *args): everything after the callable escapes; a
        # bound method's receiver escapes too (obj.m captures obj).
        for arg in node.args[1:]:
            if isinstance(arg, ast.Name):
                escapes.append((arg.id, "submit"))
        if node.args:
            fn = node.args[0]
            if isinstance(fn, ast.Attribute) \
                    and isinstance(fn.value, ast.Name) \
                    and fn.value.id != "self":
                escapes.append((fn.value.id, "submit"))
    elif func_name in THREAD_SPAWNERS:
        for keyword in node.keywords:
            if keyword.arg == "args" and isinstance(
                    keyword.value, (ast.Tuple, ast.List)):
                for element in keyword.value.elts:
                    if isinstance(element, ast.Name):
                        escapes.append((element.id, func_name))
            elif keyword.arg == "target" \
                    and isinstance(keyword.value, ast.Attribute) \
                    and isinstance(keyword.value.value, ast.Name) \
                    and keyword.value.value.id != "self":
                escapes.append((keyword.value.value.id, func_name))
    elif func_name.endswith("Worker"):
        for arg in node.args:
            if isinstance(arg, ast.Name):
                escapes.append((arg.id, func_name))
        for keyword in node.keywords:
            if isinstance(keyword.value, ast.Name):
                escapes.append((keyword.value.id, func_name))
    return escapes


def _check_function(fn: FunctionNode, path: str,
                    diagnostics: list[Diagnostic]) -> None:
    escaped: dict[str, EscapeSite] = {}
    # Walk in source order: ast.walk is breadth-first, so sort events.
    events: list[tuple[int, int, ast.AST]] = []
    for sub in ast.walk(fn):
        if isinstance(sub, (ast.Call, ast.Assign, ast.AugAssign,
                            ast.Delete, ast.AnnAssign)):
            events.append((getattr(sub, "lineno", 0),
                           getattr(sub, "col_offset", 0), sub))
    events.sort(key=lambda item: (item[0], item[1]))

    for line, _col, sub in events:
        if isinstance(sub, ast.Call):
            for name, via in _escaping_names(sub):
                escaped.setdefault(name, EscapeSite(
                    name=name, line=line, via=via))
            continue
        targets: list[ast.expr]
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, ast.AnnAssign):
            targets = [sub.target]
        elif isinstance(sub, ast.AugAssign):
            targets = [sub.target]
        else:
            targets = list(sub.targets)
        for target in targets:
            if isinstance(target, ast.Name):
                # Rebinding the name: the parent holds a new object.
                escaped.pop(target.id, None)
                continue
            root = target
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if not isinstance(root, ast.Name):
                continue
            site = escaped.get(root.id)
            if site is not None and line > site.line:
                attr = (target.attr if isinstance(target, ast.Attribute)
                        else "<item>")
                diagnostics.append(Diagnostic(
                    rule="CONC-ESCAPED-MUTATION", severity=ERROR,
                    message=(
                        f"'{root.id}.{attr}' is mutated after "
                        f"'{root.id}' was handed to a worker via "
                        f"{site.via}() on line {site.line}; the worker "
                        f"may observe either state"),
                    hint=("finish building the object before handing "
                          "it off, or pass an immutable snapshot"),
                    path=path, line=line,
                    col=getattr(target, "col_offset", 0) + 1,
                ))


def check_escapes(modules: list[ModuleModel]) -> list[Diagnostic]:
    """CONC-ESCAPED-MUTATION diagnostics across every function."""
    diagnostics: list[Diagnostic] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _check_function(node, module.path, diagnostics)
    return diagnostics


__all__ = ["EscapeSite", "check_escapes"]
