"""Top-level concurrency checker: orchestration, rules, suppression.

``repro check --concurrency`` lands here: scan the target files into
class models (:mod:`.model`), run the three static passes (lockset,
lock-order, escape), apply ``# repro: noqa`` suppression, and return a
:class:`~repro.analysis.diagnostics.DiagnosticReport` that renders
through the existing text/JSON/SARIF machinery.

:func:`analyze_concurrency` additionally returns the structured
:class:`ConcurrencyAnalysis` the runtime sanitizer cross-check joins
against: the guarded-attribute map and the *pre-suppression* unguarded
site index (a noqa'd site is still a static verdict; the cross-check
must not count a dynamically observed race at that site as a static
false negative).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Union

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, ERROR

from .escape import check_escapes
from .lockorder import LockOrderGraph, build_lock_order_graph, \
    check_lock_order
from .lockset import LocksetResult, check_locksets
from .model import ClassModel, ModuleModel, scan_paths

#: Every rule id the concurrency checker can emit.
CONC_RULES: dict[str, str] = {
    "CONC-UNGUARDED": ("guarded-by annotated attribute accessed "
                       "without holding its lock"),
    "CONC-SHARED-UNANNOTATED": ("unannotated attribute mutated from "
                                "both a worker callable and a public "
                                "method"),
    "CONC-LOCK-ORDER": ("inconsistent lock acquisition order "
                        "(potential deadlock cycle)"),
    "CONC-ESCAPED-MUTATION": ("object mutated by the parent after "
                              "being handed to a worker"),
    "CONC-PARSE": "concurrency-check target is not parseable Python",
}

_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa\b[:\s]*"
    r"(?P<rules>(?:(?:REP\d{3}|CONC-[A-Z-]+)[,\s]*)*)"
)


@dataclass
class ConcurrencyAnalysis:
    """Static verdicts plus the indexes the sanitizer joins against."""

    report: DiagnosticReport = field(default_factory=DiagnosticReport)
    classes: list[ClassModel] = field(default_factory=list)
    #: ``(class name, attr)`` -> lock attr name, from annotations.
    guarded: dict[tuple[str, str], str] = field(default_factory=dict)
    #: ``(class name, attr)`` pairs with a static unguarded-access
    #: verdict, *before* noqa suppression.
    unguarded_sites: set[tuple[str, str]] = field(default_factory=set)
    lock_graph: LockOrderGraph = field(default_factory=LockOrderGraph)

    def class_named(self, name: str) -> ClassModel | None:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None


def _suppressed(diag: Diagnostic,
                sources: dict[str, list[str]]) -> bool:
    lines = sources.get(diag.path)
    if lines is None or not (1 <= diag.line <= len(lines)):
        return False
    match = _NOQA_PATTERN.search(lines[diag.line - 1])
    if match is None:
        return False
    rules = frozenset(re.findall(r"REP\d{3}|CONC-[A-Z-]+",
                                 match.group("rules")))
    return not rules or diag.rule in rules


def _parse_failures(targets: Iterable[Union[str, Path]],
                    parsed: list[ModuleModel]) -> list[Diagnostic]:
    """CONC-PARSE for files the scanner had to skip."""
    import ast

    from repro.analysis.astlint import iter_python_files

    parsed_paths = {module.path for module in parsed}
    diagnostics: list[Diagnostic] = []
    for target in targets:
        for file_path in iter_python_files(target):
            if str(file_path) in parsed_paths:
                continue
            try:
                ast.parse(file_path.read_text(encoding="utf-8"),
                          filename=str(file_path))
            except SyntaxError as exc:
                diagnostics.append(Diagnostic(
                    rule="CONC-PARSE", severity=ERROR,
                    message=f"cannot parse: {exc.msg}",
                    path=str(file_path), line=exc.lineno or 0,
                    col=exc.offset or 1,
                ))
    return diagnostics


def analyze_concurrency(
        targets: Iterable[Union[str, Path]]) -> ConcurrencyAnalysis:
    """Run every static concurrency pass over the targets."""
    targets = list(targets)
    modules = scan_paths(targets)
    analysis = ConcurrencyAnalysis()
    for module in modules:
        analysis.classes.extend(module.classes)

    lockset: LocksetResult = check_locksets(analysis.classes)
    analysis.guarded = lockset.guarded
    analysis.unguarded_sites = lockset.unguarded_sites
    analysis.lock_graph = build_lock_order_graph(analysis.classes)

    diagnostics = list(lockset.diagnostics)
    diagnostics.extend(check_lock_order(analysis.classes))
    diagnostics.extend(check_escapes(modules))
    diagnostics.extend(_parse_failures(targets, modules))

    sources = {module.path: module.source_lines for module in modules}
    for diag in diagnostics:
        if not _suppressed(diag, sources):
            analysis.report.add(diag)
    return analysis


def check_concurrency(
        targets: Iterable[Union[str, Path]]) -> DiagnosticReport:
    """The diagnostics-only view of :func:`analyze_concurrency`."""
    return analyze_concurrency(targets).report


def default_targets() -> list[str]:
    """What ``repro check --concurrency`` analyzes with no explicit
    path: the whole installed ``repro`` package (the lock-order graph
    is only meaningful repo-wide)."""
    import repro

    return [str(Path(repro.__file__).parent)]


def annotated_targets() -> list[str]:
    """The annotated first-checked modules (PR 4's concurrent serving
    stack); the sanitizer derives its watch list from these."""
    import repro

    root = Path(repro.__file__).parent
    return [str(root / "core" / "packcache.py"),
            str(root / "core" / "parallel.py"),
            str(root / "runtime" / "serving.py"),
            str(root / "runtime" / "overload.py"),
            str(root / "runtime" / "sharding.py")]


__all__ = [
    "CONC_RULES",
    "ConcurrencyAnalysis",
    "analyze_concurrency",
    "annotated_targets",
    "check_concurrency",
    "default_targets",
]
