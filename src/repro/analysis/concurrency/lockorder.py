"""Lock-order graph: acquires-while-holding edges and deadlock cycles.

Locks are identified as ``ClassName.attr``.  An edge ``L -> M`` means
some code path acquires ``M`` while already holding ``L``; any cycle in
the digraph is a potential deadlock (two threads entering the cycle at
different points block each other forever) and is reported as
**CONC-LOCK-ORDER** with both witness paths in the message.

Edges come from two sources:

* direct nesting -- ``with self.a:`` containing ``with self.b:``;
* interprocedural nesting within a class -- ``with self.a:`` around a
  call to a method that (transitively) acquires ``self.b``, including
  locks guaranteed held at method entry by the lockset pass.

Cross-*class* edges (holding ``A._lock`` while calling into an object
of another class that locks internally) are out of scope: attribute
types are not resolvable syntactically.  The repo convention that makes
this sound is layering -- ``PackingCache`` is a leaf lock (it calls out
to pure packing functions only), enforced by the cycle check inside
each class that embeds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, ERROR

from .lockset import entry_locksets
from .model import ClassModel


@dataclass(frozen=True)
class LockEdge:
    """``held -> acquired`` with the source location that witnesses it."""

    held: str
    acquired: str
    path: str
    line: int
    method: str


@dataclass
class LockOrderGraph:
    """Acquires-while-holding digraph over ``ClassName.attr`` locks."""

    #: edge key -> first witness (one witness per ordered pair suffices
    #: to show the cycle; later duplicates add nothing).
    edges: dict[tuple[str, str], LockEdge] = field(default_factory=dict)

    def add(self, edge: LockEdge) -> None:
        self.edges.setdefault((edge.held, edge.acquired), edge)

    def successors(self, lock: str) -> list[str]:
        return sorted(acquired for held, acquired in self.edges
                      if held == lock)

    def cycles(self) -> list[list[str]]:
        """Elementary cycles, deduplicated by their lock set."""
        found: list[list[str]] = []
        seen: set[frozenset[str]] = set()
        nodes = sorted({lock for pair in self.edges for lock in pair})
        for start in nodes:
            if (start, start) in self.edges:
                # Re-acquiring a non-reentrant lock deadlocks immediately.
                found.append([start, start])
            # Each longer cycle is discovered exactly once: from its
            # lexicographically smallest lock, walking larger ones only.
            stack = [(start, [start])]
            while stack:
                current, trail = stack.pop()
                for nxt in self.successors(current):
                    if nxt == start and len(trail) > 1:
                        key = frozenset(trail)
                        if key not in seen:
                            seen.add(key)
                            found.append(trail + [start])
                    elif nxt > start and nxt not in trail:
                        stack.append((nxt, trail + [nxt]))
        return found


def _acquired_within(cls: ClassModel,
                     entry: dict[str, frozenset[str]]
                     ) -> dict[str, set[str]]:
    """Locks possibly acquired during each method, transitively."""
    acquired: dict[str, set[str]] = {
        name: {acq.lock for acq in method.acquires}
        for name, method in cls.methods.items()
    }
    changed = True
    while changed:
        changed = False
        for name, method in cls.methods.items():
            for call in method.calls:
                if call.callee not in acquired:
                    continue
                before = len(acquired[name])
                acquired[name] |= acquired[call.callee]
                if len(acquired[name]) != before:
                    changed = True
    return acquired


def build_lock_order_graph(classes: list[ClassModel]) -> LockOrderGraph:
    """Collect acquires-while-holding edges across every class."""
    graph = LockOrderGraph()
    for cls in classes:
        if not any(m.acquires for m in cls.methods.values()):
            continue
        entry = entry_locksets(cls)
        acquired = _acquired_within(cls, entry)

        def qualify(lock: str) -> str:
            return f"{cls.name}.{lock}"

        for name, method in cls.methods.items():
            base = entry.get(name, frozenset())
            for acq in method.acquires:
                for held in acq.held | base:
                    if held != acq.lock:
                        graph.add(LockEdge(
                            held=qualify(held),
                            acquired=qualify(acq.lock),
                            path=cls.path, line=acq.line, method=name))
            for call in method.calls:
                inner = acquired.get(call.callee, set())
                for held in call.held | base:
                    for target in inner:
                        if held != target:
                            graph.add(LockEdge(
                                held=qualify(held),
                                acquired=qualify(target),
                                path=cls.path, line=call.line,
                                method=name))
    return graph


def _witness(graph: LockOrderGraph, held: str, acquired: str) -> str:
    edge = graph.edges.get((held, acquired))
    if edge is None:
        return f"{held} -> {acquired}"
    return (f"{held} -> {acquired} "
            f"({edge.path}:{edge.line} in {edge.method}())")


def check_lock_order(classes: list[ClassModel]) -> list[Diagnostic]:
    """CONC-LOCK-ORDER diagnostics, one per distinct cycle."""
    graph = build_lock_order_graph(classes)
    diagnostics: list[Diagnostic] = []
    for cycle in graph.cycles():
        steps = [_witness(graph, cycle[i], cycle[i + 1])
                 for i in range(len(cycle) - 1)]
        first = graph.edges.get((cycle[0], cycle[1]))
        diagnostics.append(Diagnostic(
            rule="CONC-LOCK-ORDER", severity=ERROR,
            message=("inconsistent lock acquisition order (potential "
                     "deadlock): " + "; ".join(steps)),
            hint=("impose one global order on these locks and acquire "
                  "them in that order on every path"),
            path=first.path if first else "",
            line=first.line if first else 0,
            col=1,
        ))
    return diagnostics


__all__ = [
    "LockEdge",
    "LockOrderGraph",
    "build_lock_order_graph",
    "check_lock_order",
]
