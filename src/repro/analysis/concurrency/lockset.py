"""Lockset analysis: every guarded attribute access holds its lock.

For each analyzed class the pass computes, per method, the set of locks
*guaranteed* held on entry, then checks every ``self.<attr>`` access of
a ``# repro: guarded-by(<lock>)`` attribute against the union of that
entry set and the intraprocedural ``with`` nesting at the access point.

Interprocedural entry sets are a meet-over-call-sites fixpoint:

* public methods, dunders and worker-submitted callables can be invoked
  by arbitrary threads with nothing held -- their entry set is empty;
* a private helper's entry set is the *intersection* of the locksets at
  every internal call site (a helper only ever called under
  ``with self._lock:`` is guaranteed the lock, which is exactly how
  ``_locked_*`` helper idioms stay diagnostic-free);
* helpers reachable only from ``__init__`` are exempt entirely: the
  object is thread-confined until the constructor returns.

Two rules fire here:

* **CONC-UNGUARDED** (error): an annotated attribute is read or written
  without its lock.
* **CONC-SHARED-UNANNOTATED** (warning): an attribute that is not
  annotated, not a lock, and not of a known thread-safe type is mutated
  both from a worker-submitted callable and from a public method -- two
  threads can race on it and the analyzer has no contract to check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic, ERROR, WARNING

from .model import Access, ClassModel

@dataclass
class LocksetResult:
    """Diagnostics plus the structured site index the sanitizer joins."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: ``(class name, attr)`` -> lock attr, for every annotation seen.
    guarded: dict[tuple[str, str], str] = field(default_factory=dict)
    #: ``(class name, attr)`` pairs with at least one unguarded access
    #: (pre-noqa: the cross-check must see suppressed sites too).
    unguarded_sites: set[tuple[str, str]] = field(default_factory=set)
    #: method name -> locks guaranteed held on entry, per class.
    entry_locks: dict[str, dict[str, frozenset[str]]] = \
        field(default_factory=dict)


def _externally_callable(cls: ClassModel, name: str) -> bool:
    method = cls.methods[name]
    return (method.public or name in cls.worker_entries
            or name == "__init__")


def entry_locksets(cls: ClassModel) -> dict[str, frozenset[str]]:
    """Meet-over-call-sites fixpoint of locks held at method entry.

    Externally callable methods start at the empty set and never grow;
    private helpers start unknown (``None``) and meet (intersect) the
    lockset of every call site whose caller is itself resolved.  The
    lattice is finite and the meet monotone, so the loop terminates.
    """
    entry: dict[str, frozenset[str] | None] = {
        name: (frozenset() if _externally_callable(cls, name) else None)
        for name in cls.methods
    }
    changed = True
    while changed:
        changed = False
        for name, method in cls.methods.items():
            caller_entry = entry[name]
            if caller_entry is None:
                continue  # not known reachable yet
            for call in method.calls:
                callee = call.callee
                if callee not in cls.methods \
                        or _externally_callable(cls, callee):
                    continue
                site_held = call.held | caller_entry
                current = entry[callee]
                new = (site_held if current is None
                       else current & site_held)
                if new != current:
                    entry[callee] = new
                    changed = True
    # Helpers never called internally: conservatively assume no locks.
    return {name: (locks if locks is not None else frozenset())
            for name, locks in entry.items()}


def init_only_methods(cls: ClassModel) -> set[str]:
    """Private methods reachable *only* from ``__init__``.

    These run before the object escapes the constructing thread, so
    guarded-attribute accesses inside them are exempt -- mirroring the
    runtime sanitizer, which tags constructor-frame accesses
    ``in_init``.
    """
    callers: dict[str, set[str]] = {name: set() for name in cls.methods}
    for name, method in cls.methods.items():
        for call in method.calls:
            if call.callee in callers:
                callers[call.callee].add(name)
    exempt = {"__init__"}
    changed = True
    while changed:
        changed = False
        for name, method in cls.methods.items():
            if name in exempt or method.public \
                    or name in cls.worker_entries:
                continue
            if callers[name] and callers[name] <= exempt:
                exempt.add(name)
                changed = True
    return exempt


def _worker_reachable(cls: ClassModel) -> set[str]:
    """Methods reachable from any worker-submitted entry point."""
    reachable = set(cls.worker_entries)
    frontier = list(cls.worker_entries)
    while frontier:
        current = frontier.pop()
        method = cls.methods.get(current)
        if method is None:
            continue
        for call in method.calls:
            if call.callee in cls.methods \
                    and call.callee not in reachable:
                reachable.add(call.callee)
                frontier.append(call.callee)
    return reachable


def check_class_locksets(cls: ClassModel,
                         result: LocksetResult) -> None:
    """Emit CONC-UNGUARDED / CONC-SHARED-UNANNOTATED for one class."""
    if not cls.concurrent:
        return
    entry = entry_locksets(cls)
    result.entry_locks[cls.name] = entry
    exempt = init_only_methods(cls)

    for attr, lock in cls.guarded.items():
        result.guarded[(cls.name, attr)] = lock

    for name, method in cls.methods.items():
        if name in exempt:
            continue
        for access in method.accesses:
            lock = cls.guarded.get(access.attr)
            if lock is None:
                continue
            effective = access.held | entry[name]
            if lock not in effective:
                result.unguarded_sites.add((cls.name, access.attr))
                kind = "write" if access.write else "read"
                result.diagnostics.append(Diagnostic(
                    rule="CONC-UNGUARDED", severity=ERROR,
                    message=(
                        f"{cls.name}.{access.attr} is guarded by "
                        f"'{lock}' but {cls.name}.{name}() {kind}s it "
                        f"without holding the lock"),
                    hint=(f"wrap the access in 'with self.{lock}:' or "
                          f"call it from a context that already holds "
                          f"the lock"),
                    path=cls.path, line=access.line, col=access.col,
                ))

    _check_shared_unannotated(cls, exempt, result)


def _check_shared_unannotated(cls: ClassModel,
                              exempt: set[str],
                              result: LocksetResult) -> None:
    if not cls.creates_threads or not cls.worker_entries:
        return
    worker_methods = _worker_reachable(cls)

    def mutations(names: set[str]) -> dict[str, Access]:
        first: dict[str, Access] = {}
        for name in names:
            method = cls.methods.get(name)
            if method is None or name in exempt:
                continue
            for access in method.accesses:
                if access.write and access.attr not in first:
                    first.setdefault(access.attr, access)
        return first

    public_methods = {name for name, m in cls.methods.items()
                      if m.public and name not in worker_methods}
    worker_writes = mutations(worker_methods)
    public_writes = mutations(public_methods)
    for attr, worker_access in sorted(worker_writes.items()):
        if attr in cls.guarded or attr in cls.safe_attrs \
                or attr in cls.lock_attrs:
            continue
        public_access = public_writes.get(attr)
        if public_access is None:
            continue
        result.diagnostics.append(Diagnostic(
            rule="CONC-SHARED-UNANNOTATED", severity=WARNING,
            message=(
                f"{cls.name}.{attr} is mutated from worker callable "
                f"{cls.name}.{worker_access.method}() and public "
                f"method {cls.name}.{public_access.method}() but "
                f"carries no guarded-by annotation"),
            hint=(f"annotate the attribute '# repro: "
                  f"guarded-by(<lock>)' and take the lock on both "
                  f"paths, or make it a thread-safe container"),
            path=cls.path, line=worker_access.line,
            col=worker_access.col,
        ))


def check_locksets(classes: list[ClassModel]) -> LocksetResult:
    """Run the lockset pass over every extracted class model."""
    result = LocksetResult()
    for cls in classes:
        check_class_locksets(cls, result)
    return result


__all__ = [
    "LocksetResult",
    "check_class_locksets",
    "check_locksets",
    "entry_locksets",
    "init_only_methods",
]
