"""Runtime lock sanitizer and the static/dynamic cross-check.

Mirrors PR 2's "static verdict matches runtime behaviour" pattern for
concurrency: the static lockset pass claims which guarded-attribute
accesses can happen without their lock; this module *observes* the
program and checks the claim.

Three cooperating pieces:

* :class:`SanitizedLock` -- a wrapper the lock factory
  (:mod:`repro.core.locks`) hands out while the sanitizer is active.
  It records every acquire/release with the per-thread stack of locks
  already held, so the trace doubles as a dynamic lock-order witness.
* **class instrumentation** -- :meth:`LockSanitizer.watch` patches a
  class's ``__getattribute__``/``__setattr__`` to record reads and
  writes of its ``guarded-by``-annotated attributes, together with the
  locks the accessing thread holds at that instant and whether the
  access happened inside the object's ``__init__`` (thread-confined,
  exempt -- the same exemption the static pass applies).
* :func:`crosscheck` -- replays the trace against a
  :class:`~repro.analysis.concurrency.checker.ConcurrencyAnalysis`:
  every *dynamic* unguarded access must correspond to a *static*
  unguarded verdict for the same ``(class, attribute)``.  A dynamic
  violation with no static counterpart is a false negative of the
  analyzer on a traced path -- the integration test asserts there are
  none.

Activation is opt-in and scoped: ``repro serve --sanitize`` and the
``lock_sanitizer`` pytest fixture wrap the workload in
:meth:`LockSanitizer.activate`, which installs the lock-factory hook,
patches the watched classes, and restores everything on exit.  With
the sanitizer inactive the factory returns raw ``threading`` locks and
no class is patched -- zero overhead on the hot path.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Callable, Iterator, Optional

from repro.core.errors import ReproError
from repro.core.locks import set_lock_factory_hook

from .checker import ConcurrencyAnalysis, analyze_concurrency, \
    annotated_targets


class SanitizerError(ReproError, RuntimeError):
    """Raised on sanitizer misuse (double activation, unknown class)."""


@dataclass(frozen=True)
class LockEvent:
    """One acquire/release of a sanitized lock."""

    kind: str                 # "acquire" | "release"
    lock: str
    thread: int
    held_before: tuple[str, ...]
    line: int


@dataclass(frozen=True)
class AccessEvent:
    """One read/write of a watched (annotated) attribute."""

    cls: str
    attr: str
    kind: str                 # "read" | "write"
    thread: int
    locks_held: tuple[str, ...]
    function: str
    in_init: bool
    required: str             # full lock name the annotation demands


@dataclass
class SanitizerTrace:
    """Thread-safe event log of one sanitized run."""

    lock_events: list[LockEvent] = field(default_factory=list)
    access_events: list[AccessEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        # The trace's own mutex; a raw lock on purpose (wrapping it
        # through the factory would recurse into the sanitizer).
        self._mutex = threading.Lock()

    def add_lock_event(self, event: LockEvent) -> None:
        with self._mutex:
            self.lock_events.append(event)

    def add_access_event(self, event: AccessEvent) -> None:
        with self._mutex:
            self.access_events.append(event)

    def acquisitions(self) -> list[LockEvent]:
        with self._mutex:
            return [e for e in self.lock_events if e.kind == "acquire"]

    def accesses(self) -> list[AccessEvent]:
        with self._mutex:
            return list(self.access_events)

    def threads(self) -> set[int]:
        with self._mutex:
            return ({e.thread for e in self.lock_events}
                    | {e.thread for e in self.access_events})


class SanitizedLock:
    """Recording wrapper around a ``threading`` lock primitive."""

    def __init__(self, inner: Any, name: str,
                 sanitizer: "LockSanitizer") -> None:
        self._inner = inner
        self.name = name
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            self._sanitizer.note_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._sanitizer.note_release(self.name)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: Optional[type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.release()


@dataclass
class _WatchedClass:
    """Originals needed to restore a patched class."""

    cls: type
    attrs: dict[str, str]     # attr -> required full lock name
    orig_getattribute: Callable[..., Any]
    orig_setattr: Callable[..., Any]


class LockSanitizer:
    """Process-global recorder; one instance, module-level singleton."""

    def __init__(self) -> None:
        self.trace = SanitizerTrace()
        self._tls = threading.local()
        self._active = False
        self._watched: list[_WatchedClass] = []

    # -- per-thread lock stack -----------------------------------------

    def _held(self) -> list[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def locks_held(self) -> tuple[str, ...]:
        """Locks the calling thread currently holds (sanitized only)."""
        return tuple(self._held())

    def note_acquire(self, name: str) -> None:
        held = self._held()
        frame = sys._getframe(2)
        self.trace.add_lock_event(LockEvent(
            kind="acquire", lock=name,
            thread=threading.get_ident(),
            held_before=tuple(held), line=frame.f_lineno))
        held.append(name)

    def note_release(self, name: str) -> None:
        held = self._held()
        if name in held:
            # Remove the innermost occurrence (RLocks nest).
            for i in range(len(held) - 1, -1, -1):
                if held[i] == name:
                    del held[i]
                    break
        self.trace.add_lock_event(LockEvent(
            kind="release", lock=name,
            thread=threading.get_ident(),
            held_before=tuple(held), line=0))

    # -- activation ----------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    def _factory_hook(self, kind: str, name: str) -> SanitizedLock:
        inner = (threading.RLock() if kind == "rlock"
                 else threading.Lock())
        return SanitizedLock(inner, name, self)

    def watch(self, cls: type, attrs: dict[str, str]) -> None:
        """Patch ``cls`` to record accesses of ``attrs``.

        ``attrs`` maps attribute name to the *full* lock name its
        annotation requires (``"PackingCache._lock"``).  Restored by
        :meth:`deactivate`.
        """
        if any(w.cls is cls for w in self._watched):
            return
        watched = _WatchedClass(
            cls=cls, attrs=dict(attrs),
            orig_getattribute=cls.__getattribute__,
            orig_setattr=cls.__setattr__)
        sanitizer = self

        def recording_getattribute(obj: Any, name: str) -> Any:
            value = watched.orig_getattribute(obj, name)
            if name in watched.attrs and sanitizer._active:
                sanitizer._record_access(obj, cls.__name__, name,
                                         "read", watched.attrs[name])
            return value

        def recording_setattr(obj: Any, name: str,
                              value: Any) -> None:
            if name in watched.attrs and sanitizer._active:
                sanitizer._record_access(obj, cls.__name__, name,
                                         "write", watched.attrs[name])
            watched.orig_setattr(obj, name, value)

        cls.__getattribute__ = recording_getattribute  # type: ignore[method-assign,assignment]
        cls.__setattr__ = recording_setattr  # type: ignore[method-assign,assignment]
        self._watched.append(watched)

    def _record_access(self, obj: Any, cls_name: str, attr: str,
                       kind: str, required: str) -> None:
        frame = sys._getframe(2)
        function = frame.f_code.co_name
        in_init = False
        probe = frame
        for _ in range(32):
            if probe is None:
                break
            if probe.f_code.co_name == "__init__" \
                    and probe.f_locals.get("self") is obj:
                in_init = True
                break
            probe = probe.f_back
        self.trace.add_access_event(AccessEvent(
            cls=cls_name, attr=attr, kind=kind,
            thread=threading.get_ident(),
            locks_held=self.locks_held(),
            function=function, in_init=in_init, required=required))

    def activate(self) -> None:
        """Install the factory hook; new locks are recorded wrappers."""
        if self._active:
            raise SanitizerError("sanitizer is already active")
        self.trace = SanitizerTrace()
        self._active = True
        set_lock_factory_hook(self._factory_hook)

    def deactivate(self) -> None:
        """Remove the hook and restore every patched class."""
        set_lock_factory_hook(None)
        for watched in reversed(self._watched):
            watched.cls.__getattribute__ = (  # type: ignore[method-assign,assignment]
                watched.orig_getattribute)
            watched.cls.__setattr__ = (  # type: ignore[method-assign,assignment]
                watched.orig_setattr)
        self._watched.clear()
        self._active = False


#: The singleton every entry point (CLI flag, pytest fixture) shares.
sanitizer = LockSanitizer()


def watch_from_analysis(analysis: ConcurrencyAnalysis,
                        classes: dict[str, type],
                        active: Optional[LockSanitizer] = None) -> None:
    """Watch each class's annotated attributes, as the analysis saw
    them -- the static annotation drives the dynamic instrumentation,
    so the two sides check the *same* contract by construction."""
    active = active or sanitizer
    for name, cls in classes.items():
        attrs = {attr: f"{cls_name}.{lock}"
                 for (cls_name, attr), lock in analysis.guarded.items()
                 if cls_name == name}
        if attrs:
            active.watch(cls, attrs)


def default_watch_classes() -> dict[str, type]:
    """The annotated serving-stack classes, imported lazily."""
    from repro.core.packcache import PackingCache
    from repro.core.parallel import ParallelMixGemm
    from repro.runtime.overload import CircuitBreaker
    from repro.runtime.serving import BatchedServer

    return {"PackingCache": PackingCache,
            "ParallelMixGemm": ParallelMixGemm,
            "BatchedServer": BatchedServer,
            "CircuitBreaker": CircuitBreaker}


@contextmanager
def sanitized_session(
        watch_defaults: bool = True,
        analysis: Optional[ConcurrencyAnalysis] = None,
) -> Iterator[LockSanitizer]:
    """Activate the singleton for one scoped workload.

    With ``watch_defaults`` the annotated serving-stack classes are
    instrumented using the static analysis of their own source files
    (``analysis`` overrides, for tests that target fixture modules).
    """
    sanitizer.activate()
    try:
        if watch_defaults:
            current = analysis or analyze_concurrency(
                annotated_targets())
            watch_from_analysis(current, default_watch_classes())
        yield sanitizer
    finally:
        sanitizer.deactivate()


# -- the cross-check ---------------------------------------------------


@dataclass(frozen=True)
class DynamicViolation:
    """One dynamically observed unguarded access."""

    cls: str
    attr: str
    kind: str
    function: str
    thread: int
    required: str
    matched: bool             # a static CONC-UNGUARDED verdict exists


@dataclass
class CrosscheckResult:
    """Dynamic violations, split by whether statics predicted them."""

    violations: list[DynamicViolation] = field(default_factory=list)
    #: Dynamic violations with *no* static counterpart: analyzer false
    #: negatives on the traced paths.  Must be empty.
    unmatched: list[DynamicViolation] = field(default_factory=list)
    events_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.unmatched

    def render(self) -> str:
        lines = [f"sanitizer cross-check: {self.events_checked} "
                 f"access events, {len(self.violations)} dynamic "
                 f"unguarded, {len(self.unmatched)} unmatched"]
        for violation in self.unmatched:
            lines.append(
                f"  FALSE NEGATIVE: {violation.cls}.{violation.attr} "
                f"{violation.kind} in {violation.function}() without "
                f"{violation.required} (no static diagnostic)")
        return "\n".join(lines)


def crosscheck(trace: SanitizerTrace,
               analysis: ConcurrencyAnalysis) -> CrosscheckResult:
    """Replay dynamic accesses against the static lockset verdicts.

    For every traced access of an annotated attribute outside its
    lock (and outside ``__init__``), demand a static CONC-UNGUARDED
    verdict at the same ``(class, attribute)``.  The static index is
    pre-noqa: a suppressed diagnostic still counts as "the analyzer
    saw it".
    """
    result = CrosscheckResult()
    for event in trace.accesses():
        if event.in_init:
            continue
        result.events_checked += 1
        if event.required in event.locks_held:
            continue
        matched = (event.cls, event.attr) in analysis.unguarded_sites
        violation = DynamicViolation(
            cls=event.cls, attr=event.attr, kind=event.kind,
            function=event.function, thread=event.thread,
            required=event.required, matched=matched)
        result.violations.append(violation)
        if not matched:
            result.unmatched.append(violation)
    return result


__all__ = [
    "AccessEvent",
    "CrosscheckResult",
    "DynamicViolation",
    "LockEvent",
    "LockSanitizer",
    "SanitizedLock",
    "SanitizerError",
    "SanitizerTrace",
    "crosscheck",
    "default_watch_classes",
    "sanitized_session",
    "sanitizer",
    "watch_from_analysis",
]
