"""AST extraction layer for the concurrency-safety analyzer.

This module turns Python source into per-class *concurrency models*:
which attributes are annotated ``# repro: guarded-by(<lock>)``, which
attributes hold locks, where locks are acquired (``with self.<lock>:``),
every ``self.<attr>`` access with the intraprocedural lockset held at
that point, every ``self.<method>()`` call site, and which methods are
handed to worker threads (``executor.submit(self.m, ...)``,
``threading.Thread(target=self.m)``).

The downstream passes (:mod:`.lockset`, :mod:`.lockorder`,
:mod:`.escape`) consume these models; nothing here emits diagnostics.

Scope and honesty
-----------------
The extractor is deliberately syntactic: it recognizes locks held via
``with self.<attr>:`` (including multi-item ``with``) and attribute
access spelled ``self.<attr>``.  Locks stashed in local aliases, locks
acquired via bare ``.acquire()`` calls, and attributes reached through
intermediate locals are *not* tracked -- the repo's house style (and
lint rule REP008) keeps locks in ``self`` attributes acquired with
``with``, so the syntactic subset is the enforced subset.  Nested
function bodies (closures, lambdas) are skipped: they execute under an
unknown lockset, so neither claiming "guarded" nor "unguarded" for
them would be sound.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

#: ``# repro: guarded-by(_lock)`` trailing-comment annotation.
GUARDED_BY_PATTERN = re.compile(
    r"#\s*repro:\s*guarded-by\(\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)\s*\)"
)

#: Constructor names (last dotted component) that produce lock objects.
LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "make_lock", "make_rlock",
})

#: Constructor names whose instances are internally synchronized, so
#: unannotated sharing of the *attribute* is safe (the reference is
#: written once in ``__init__`` and only methods are invoked after).
#: ``Process``/``Pipe``/``SharedMemory`` cover the process-sharding
#: runtime: the kernel mediates every cross-process interaction, so
#: the Python-side handle needs no additional lock for its methods.
THREAD_SAFE_CONSTRUCTORS = frozenset({
    "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue",
    "ThreadPoolExecutor", "ProcessPoolExecutor", "Thread",
    "Event", "Condition", "Semaphore", "BoundedSemaphore", "Barrier",
    "local", "Future", "Process", "Pipe", "SharedMemory",
}) | LOCK_CONSTRUCTORS

#: Method names on an attribute that mutate the underlying container.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popitem", "popleft", "put",
    "put_nowait", "remove", "reverse", "setdefault", "sort", "update",
    "__setitem__", "__delitem__",
})

#: Callable names (last component) whose invocation spawns a thread
#: (or a worker process: the dispatcher-side handle state around a
#: ``multiprocessing.Process`` is shared between dispatcher threads
#: exactly like thread-pool state, so the same analysis applies).
THREAD_SPAWNERS = frozenset({
    "Thread", "ThreadPoolExecutor", "Timer", "Process",
})

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Access:
    """One ``self.<attr>`` touch inside a method body."""

    attr: str
    write: bool
    method: str
    held: frozenset[str]
    line: int
    col: int


@dataclass(frozen=True)
class LockAcquire:
    """One ``with self.<lock>:`` entry, with the locks already held."""

    lock: str
    held: frozenset[str]
    method: str
    line: int


@dataclass(frozen=True)
class CallSite:
    """One ``self.<method>()`` invocation, with the locks held."""

    callee: str
    held: frozenset[str]
    method: str
    line: int


@dataclass
class MethodModel:
    """Everything the analyzer knows about one method body."""

    name: str
    line: int
    accesses: list[Access] = field(default_factory=list)
    acquires: list[LockAcquire] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)

    @property
    def public(self) -> bool:
        """Callable from outside the class with no lock discipline."""
        if self.name.startswith("__") and self.name.endswith("__"):
            return self.name != "__init__"
        return not self.name.startswith("_")


@dataclass
class ClassModel:
    """Concurrency-relevant summary of one class definition."""

    name: str
    path: str
    line: int
    methods: dict[str, MethodModel] = field(default_factory=dict)
    #: attr -> lock attr from ``# repro: guarded-by(<lock>)``.
    guarded: dict[str, str] = field(default_factory=dict)
    #: line of the annotated assignment, for diagnostics.
    guarded_lines: dict[str, int] = field(default_factory=dict)
    lock_attrs: set[str] = field(default_factory=set)
    safe_attrs: set[str] = field(default_factory=set)
    worker_entries: set[str] = field(default_factory=set)
    creates_threads: bool = False

    @property
    def concurrent(self) -> bool:
        """Worth analyzing: annotated, or spawns its own workers."""
        return bool(self.guarded) or self.creates_threads


@dataclass
class ModuleModel:
    """All class models plus the raw tree of one parsed module."""

    path: str
    tree: ast.Module
    source_lines: list[str]
    classes: list[ClassModel] = field(default_factory=list)


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` for an ``self.X`` attribute node, else ``None``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _root_self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when a Subscript/Attribute chain bottoms out at ``self.X``.

    ``self.X[k]``, ``self.X.field``, ``self.X[k].field`` all root at
    ``X``; a store through any of them mutates the object behind
    ``self.X``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        direct = _self_attr(node)
        if direct is not None:
            return direct
        node = node.value
    return None


class _AnnotationIndex:
    """Line -> lock-name map of ``guarded-by`` comments in one module."""

    def __init__(self, source_lines: list[str]) -> None:
        self.by_line: dict[int, str] = {}
        for i, text in enumerate(source_lines, start=1):
            match = GUARDED_BY_PATTERN.search(text)
            if match is not None:
                self.by_line[i] = match.group("lock")

    def lock_for(self, node: ast.stmt) -> Optional[str]:
        """Annotation on any physical line the statement spans."""
        end = getattr(node, "end_lineno", None) or node.lineno
        for line in range(node.lineno, end + 1):
            lock = self.by_line.get(line)
            if lock is not None:
                return lock
        return None


class _MethodExtractor:
    """Walk one method body tracking the ``with self.<lock>:`` stack."""

    def __init__(self, cls: ClassModel, method: MethodModel,
                 annotations: _AnnotationIndex) -> None:
        self.cls = cls
        self.method = method
        self.annotations = annotations

    # -- statement walk ------------------------------------------------

    def walk(self, body: Iterable[ast.stmt],
             held: frozenset[str]) -> None:
        for stmt in body:
            self._statement(stmt, held)

    def _statement(self, stmt: ast.stmt, held: frozenset[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scope: unknown lockset, skip (see module doc)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                self._expression(item.context_expr, held,
                                 skip_self_attr=True)
                lock = _self_attr(item.context_expr)
                if lock is not None:
                    self.method.acquires.append(LockAcquire(
                        lock=lock, held=inner, method=self.method.name,
                        line=item.context_expr.lineno))
                    inner = inner | {lock}
                if item.optional_vars is not None:
                    self._expression(item.optional_vars, inner)
            self.walk(stmt.body, inner)
            return
        if isinstance(stmt, ast.Assign):
            self._record_binding(stmt, stmt.targets, stmt.value, held)
            for target in stmt.targets:
                self._target(target, held)
            self._expression(stmt.value, held)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._record_binding(stmt, [stmt.target], stmt.value,
                                     held)
                self._expression(stmt.value, held)
            self._target(stmt.target, held)
            return
        if isinstance(stmt, ast.AugAssign):
            self._target(stmt.target, held, aug=True)
            self._expression(stmt.value, held)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._target(target, held)
            return
        # Compound statements (and bare Expr/Return, via "value"): walk
        # nested bodies under the same lockset; expressions in
        # tests/iters are plain reads.
        for expr_field in ("test", "iter", "value", "exc", "cause",
                           "msg", "subject"):
            sub = getattr(stmt, expr_field, None)
            if isinstance(sub, ast.expr):
                self._expression(sub, held)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._target(stmt.target, held, container_write=False)
        for body_field in ("body", "orelse", "finalbody"):
            sub_body = getattr(stmt, body_field, None)
            if isinstance(sub_body, list):
                self.walk(sub_body, held)
        for handler in getattr(stmt, "handlers", []) or []:
            self.walk(handler.body, held)

    # -- attribute bookkeeping -----------------------------------------

    def _record_binding(self, stmt: ast.stmt, targets: list[ast.expr],
                        value: ast.expr, held: frozenset[str]) -> None:
        """Classify ``self.X = <ctor>()`` bindings and annotations."""
        for target in targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            lock = self.annotations.lock_for(stmt)
            if lock is not None:
                self.cls.guarded.setdefault(attr, lock)
                self.cls.guarded_lines.setdefault(attr, stmt.lineno)
            if isinstance(value, ast.Call):
                ctor = _dotted(value.func).rsplit(".", 1)[-1]
                if ctor in LOCK_CONSTRUCTORS:
                    self.cls.lock_attrs.add(attr)
                if ctor in THREAD_SAFE_CONSTRUCTORS:
                    self.cls.safe_attrs.add(attr)

    def _target(self, target: ast.expr, held: frozenset[str],
                aug: bool = False, container_write: bool = True) -> None:
        """Record the mutation a Store/Del/AugStore target performs."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target(element, held, aug=aug,
                             container_write=container_write)
            return
        if isinstance(target, ast.Starred):
            self._target(target.value, held, aug=aug,
                         container_write=container_write)
            return
        attr = _root_self_attr(target)
        if attr is not None:
            direct = _self_attr(target) is not None
            self._access(attr, write=direct or container_write,
                         line=target.lineno, col=target.col_offset,
                         held=held)
        # Subscript/attribute targets also *read* their inner expressions.
        if isinstance(target, ast.Subscript):
            if _self_attr(target.value) is None:
                self._expression(target.value, held)
            self._expression(target.slice, held)
        elif isinstance(target, ast.Attribute):
            if _self_attr(target) is None \
                    and _self_attr(target.value) is None:
                self._expression(target.value, held)

    def _access(self, attr: str, *, write: bool, line: int, col: int,
                held: frozenset[str]) -> None:
        if attr in self.cls.lock_attrs:
            return  # touching the lock itself is the discipline, not data
        self.method.accesses.append(Access(
            attr=attr, write=write, method=self.method.name,
            held=held, line=line, col=col + 1))

    # -- expression walk -----------------------------------------------

    def _expression(self, node: ast.expr, held: frozenset[str],
                    skip_self_attr: bool = False) -> None:
        if isinstance(node, (ast.Lambda,)):
            return  # nested scope, unknown lockset
        if isinstance(node, ast.Call):
            self._call(node, held)
            return
        attr = _self_attr(node)
        if attr is not None:
            if not skip_self_attr:
                self._access(attr, write=False, line=node.lineno,
                             col=node.col_offset, held=held)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expression(child, held)

    def _call(self, node: ast.Call, held: frozenset[str]) -> None:
        func = node.func
        callee_attr = _self_attr(func)
        if callee_attr is not None:
            # self.m(...) -- a method call *or* a callable attribute;
            # resolved against the class's methods by the lockset pass.
            self.method.calls.append(CallSite(
                callee=callee_attr, held=held,
                method=self.method.name, line=node.lineno))
        elif isinstance(func, ast.Attribute):
            base_attr = _self_attr(func.value)
            if base_attr is not None:
                # self.X.m(...): a read of X, a write when m mutates X.
                self._access(base_attr,
                             write=func.attr in MUTATOR_METHODS,
                             line=func.lineno, col=func.col_offset,
                             held=held)
            else:
                self._expression(func.value, held)
        elif isinstance(func, ast.expr) and not isinstance(func, ast.Name):
            self._expression(func, held)

        name = _dotted(func).rsplit(".", 1)[-1]
        if name in THREAD_SPAWNERS:
            self.cls.creates_threads = True
        self._submission(node, name)

        for arg in node.args:
            self._expression(arg, held)
        for keyword in node.keywords:
            self._expression(keyword.value, held)

    def _submission(self, node: ast.Call, name: str) -> None:
        """Record methods handed to workers (submit/Thread targets)."""
        candidates: list[ast.expr] = []
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "submit" and node.args:
            candidates.append(node.args[0])
        if name in THREAD_SPAWNERS:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    candidates.append(keyword.value)
        for candidate in candidates:
            target_attr = _self_attr(candidate)
            if target_attr is not None:
                self.cls.worker_entries.add(target_attr)


def extract_class(node: ast.ClassDef, path: str,
                  annotations: _AnnotationIndex) -> ClassModel:
    """Build the :class:`ClassModel` of one class definition."""
    cls = ClassModel(name=node.name, path=path, line=node.lineno)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method = MethodModel(name=stmt.name, line=stmt.lineno)
            cls.methods[stmt.name] = method
            _MethodExtractor(cls, method, annotations).walk(
                stmt.body, frozenset())
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            # Class-level ``X: T = ...  # repro: guarded-by(_lock)``.
            lock = annotations.lock_for(stmt)
            if lock is not None:
                targets = (stmt.targets
                           if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        cls.guarded.setdefault(target.id, lock)
                        cls.guarded_lines.setdefault(
                            target.id, stmt.lineno)
    return cls


def extract_module(source: str, path: str) -> ModuleModel:
    """Parse one module and extract every class model (raises on
    syntax errors; callers turn that into a CONC-PARSE diagnostic)."""
    tree = ast.parse(source, filename=path)
    source_lines = source.splitlines()
    annotations = _AnnotationIndex(source_lines)
    module = ModuleModel(path=path, tree=tree,
                         source_lines=source_lines)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            module.classes.append(
                extract_class(node, path, annotations))
    return module


def scan_paths(targets: Iterable[Union[str, Path]]) -> list[ModuleModel]:
    """Extract models for every ``.py`` file under the targets.

    Unparseable files are skipped here and reported by the checker,
    which owns diagnostics.
    """
    from repro.analysis.astlint import iter_python_files

    modules: list[ModuleModel] = []
    for target in targets:
        for file_path in iter_python_files(target):
            try:
                source = file_path.read_text(encoding="utf-8")
                modules.append(extract_module(source, str(file_path)))
            except SyntaxError:
                continue
    return modules


__all__ = [
    "Access",
    "CallSite",
    "ClassModel",
    "GUARDED_BY_PATTERN",
    "LOCK_CONSTRUCTORS",
    "LockAcquire",
    "MethodModel",
    "ModuleModel",
    "MUTATOR_METHODS",
    "THREAD_SAFE_CONSTRUCTORS",
    "extract_class",
    "extract_module",
    "scan_paths",
]
