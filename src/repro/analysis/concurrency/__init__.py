"""Concurrency-safety analysis for the serving stack.

Static passes (all surfaced through ``repro check --concurrency``):

* **lockset** (:mod:`.lockset`) -- ``# repro: guarded-by(<lock>)``
  annotated attributes must be accessed under their lock
  (CONC-UNGUARDED), and attributes shared between worker callables and
  public methods must be annotated (CONC-SHARED-UNANNOTATED);
* **lock order** (:mod:`.lockorder`) -- the acquires-while-holding
  digraph must be acyclic (CONC-LOCK-ORDER);
* **escape** (:mod:`.escape`) -- objects handed to workers must not be
  mutated afterwards by the parent (CONC-ESCAPED-MUTATION).

Runtime side (:mod:`.sanitizer`): an opt-in instrumentation layer
records lock acquisitions and annotated-attribute accesses during real
workloads and :func:`~repro.analysis.concurrency.sanitizer.crosscheck`
replays them against the static verdicts -- every dynamic unguarded
access must have a static diagnostic, integration-tested over the
serving and parallel-GEMM paths.
"""

from __future__ import annotations

from .checker import (
    CONC_RULES,
    ConcurrencyAnalysis,
    analyze_concurrency,
    annotated_targets,
    check_concurrency,
    default_targets,
)
from .lockorder import LockOrderGraph, build_lock_order_graph
from .lockset import LocksetResult, check_locksets
from .model import ClassModel, ModuleModel, extract_module, scan_paths
from .sanitizer import (
    CrosscheckResult,
    LockSanitizer,
    SanitizedLock,
    SanitizerTrace,
    crosscheck,
    sanitized_session,
    sanitizer,
)

__all__ = [
    "CONC_RULES",
    "ClassModel",
    "ConcurrencyAnalysis",
    "CrosscheckResult",
    "LockOrderGraph",
    "LockSanitizer",
    "LocksetResult",
    "ModuleModel",
    "SanitizedLock",
    "SanitizerTrace",
    "analyze_concurrency",
    "annotated_targets",
    "build_lock_order_graph",
    "check_concurrency",
    "check_locksets",
    "crosscheck",
    "default_targets",
    "extract_module",
    "sanitized_session",
    "sanitizer",
    "scan_paths",
]
