"""Static quantization contracts over deployment graphs and configs.

Three cooperating contract classes, each its own module:

* :mod:`.graph`    -- structural/dataflow soundness of a
  :class:`~repro.runtime.graph.GraphModel` (ids, wiring, shapes,
  scale/zero-point sanity, supported bitwidths);
* :mod:`.overflow` -- worst-case accumulator bounds per quantized node
  against the configured AccMem width (Eq. 5 / Section III-B);
* :mod:`.packing`  -- u-vector layout consistency of a
  :class:`~repro.core.config.MixGemmConfig` (elements-per-word vs.
  segmentation spec, kua/kub band, Source Buffer deadlock freedom).

:func:`check_graph` is the entry point ``repro check --graph`` and the
robustness precheck use: it proves, without executing a single GEMM,
that the dynamic engine cannot wrap, deadlock or crash on the model.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.core.binseg import DEFAULT_MUL_WIDTH
from repro.core.config import BlockingParams, DEFAULT_ACCMEM_BITS

from .graph import GRAPH_RULES, check_graph_structure
from .overflow import OVERFLOW_RULES, check_overflow
from .packing import PACKING_RULES, check_config

#: rule id -> one-line description, for SARIF rule metadata and docs.
CONTRACT_RULES: dict[str, str] = {
    **GRAPH_RULES,
    **OVERFLOW_RULES,
    **PACKING_RULES,
}


def _runtime_blocking() -> BlockingParams:
    """The blocking the inference engine actually deploys with."""
    from repro.runtime.engine import SIM_BLOCKING

    return SIM_BLOCKING


def check_graph(
    graph,
    *,
    accmem_bits: int = DEFAULT_ACCMEM_BITS,
    blocking: BlockingParams | None = None,
    mul_width: int = DEFAULT_MUL_WIDTH,
    path: str = "",
) -> DiagnosticReport:
    """Run every graph-level contract; returns the combined report.

    ``accmem_bits``/``blocking``/``mul_width`` describe the hardware the
    graph will deploy onto; defaults match what
    :class:`~repro.runtime.engine.InferenceEngine` instantiates, so a
    clean report here is a no-wrap/no-crash guarantee for a default run.
    """
    if blocking is None:
        blocking = _runtime_blocking()
    report = DiagnosticReport()
    report.extend(check_graph_structure(graph, path=path))
    report.extend(check_overflow(
        graph, accmem_bits=accmem_bits, blocking=blocking,
        mul_width=mul_width, path=path,
    ))
    return report


def check_graph_file(
    path: str,
    *,
    accmem_bits: int = DEFAULT_ACCMEM_BITS,
    blocking: BlockingParams | None = None,
    mul_width: int = DEFAULT_MUL_WIDTH,
) -> DiagnosticReport:
    """Load a serialized model and contract-check it.

    Deserialization failures become ``GRF-PARSE`` diagnostics instead of
    exceptions, so a CI lane can report on a corrupt artifact.
    """
    from repro.runtime.graph import GraphError, GraphModel

    try:
        graph = GraphModel.load(path)
    except (GraphError, OSError) as exc:
        report = DiagnosticReport()
        report.add(Diagnostic(
            rule="GRF-PARSE", severity="error",
            message=f"cannot load model: {exc}", path=path,
            hint="re-export the model with GraphModel.to_json()",
        ))
        return report
    return check_graph(graph, accmem_bits=accmem_bits, blocking=blocking,
                       mul_width=mul_width, path=path)


__all__ = [
    "CONTRACT_RULES",
    "check_config",
    "check_graph",
    "check_graph_file",
    "check_graph_structure",
    "check_overflow",
]
