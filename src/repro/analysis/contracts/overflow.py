"""Accumulator-overflow contract (paper Eq. 5 / Section III-B).

The micro-engine accumulates each C u-panel entry in a finite AccMem
register.  Per quantized node, the deepest single-register accumulation
is ``min(K, kc_logical)`` element products, where K is the im2col-lowered
inner dimension and ``kc_logical`` the logical k span of one cache block
(the scalar core folds per-block partials into 64-bit C outside AccMem).
The worst-case magnitude of that sum is

    ``min(K, kc) * max|a| * max|w|  =  min(K, kc) * 2**(ba + bw - 2)``

for signed operands (Eq. 2), and the contract demands it fits the
configured two's-complement AccMem width.  If it does not, there exists
an input on which the dynamic engine silently wraps -- the integration
suite demonstrates exactly that, so the static verdict here is not a
heuristic but matches runtime truth.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, ERROR, WARNING
from repro.core.binseg import (
    DEFAULT_MUL_WIDTH,
    BinSegError,
    accumulator_bits_required,
    worst_case_inner_product,
)
from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.packing import aligned_kc

from .packing import check_config

OVERFLOW_RULES: dict[str, str] = {
    "ACC-OVERFLOW": "worst-case accumulation exceeds the AccMem width",
    "ACC-MARGIN": "accumulation has less than one bit of AccMem headroom",
}

_QUANT_OPS = ("quant_conv2d", "quant_linear")


def node_config(node, *, accmem_bits: int, blocking: BlockingParams,
                mul_width: int = DEFAULT_MUL_WIDTH,
                ) -> MixGemmConfig | None:
    """The runtime config the engine would build for one quantized node.

    Returns ``None`` when the node's attrs cannot even produce a config
    (missing/unsupported bitwidths) -- the graph contract reports those.
    """
    act_bits = node.attrs.get("act_bits")
    weight_bits = node.attrs.get("weight_bits")
    if not isinstance(act_bits, int) or not isinstance(weight_bits, int):
        return None
    try:
        return MixGemmConfig(
            bw_a=act_bits, bw_b=weight_bits,
            signed_a=bool(node.attrs.get("act_signed", True)),
            signed_b=True, blocking=blocking, accmem_bits=accmem_bits,
            mul_width=mul_width,
        )
    except (BinSegError, ValueError):
        return None


def check_overflow(graph, *, accmem_bits: int, blocking: BlockingParams,
                   mul_width: int = DEFAULT_MUL_WIDTH,
                   path: str = "") -> list[Diagnostic]:
    """Prove (or refute) no-wrap for every quantized node of a graph."""
    diags: list[Diagnostic] = []
    seen_configs: set[str] = set()
    for label, node in zip(graph.effective_ids(), graph):
        if node.op not in _QUANT_OPS:
            continue
        config = node_config(node, accmem_bits=accmem_bits,
                             blocking=blocking, mul_width=mul_width)
        k = node.gemm_k()
        if config is None or k is None or k == 0:
            continue  # structurally broken; the graph contract reports it
        if config.name not in seen_configs:
            seen_configs.add(config.name)
            diags.extend(check_config(config, node=label, path=path))
        layout = config.layout
        kc_logical = aligned_kc(blocking.kc * layout.elems_a,
                                layout.group_elements)
        k_eff = min(k, kc_logical)
        worst = worst_case_inner_product(
            k_eff, config.bw_a, config.bw_b,
            signed_a=config.signed_a, signed_b=config.signed_b,
        )
        acc_max = config.accmem_range[1]
        need = accumulator_bits_required(
            k_eff, config.bw_a, config.bw_b,
            signed_a=config.signed_a, signed_b=config.signed_b,
        )
        if worst > acc_max:
            diags.append(Diagnostic(
                rule="ACC-OVERFLOW", severity=ERROR,
                message=(
                    f"{node.op} ({config.name}): worst-case accumulation "
                    f"of K={k_eff} products reaches |C| = {worst} but a "
                    f"{config.accmem_bits}-bit AccMem slot holds at most "
                    f"{acc_max}; the engine will wrap"
                ),
                hint=(f"needs accmem_bits >= {need}, or shrink K / the "
                      f"{config.bw_a}x{config.bw_b}-bit operand widths"),
                node=label, path=path,
            ))
        elif 2 * worst > acc_max:
            diags.append(Diagnostic(
                rule="ACC-MARGIN", severity=WARNING,
                message=(
                    f"{node.op} ({config.name}): K={k_eff} leaves less "
                    f"than one spare bit in the {config.accmem_bits}-bit "
                    f"AccMem (worst case {worst} of {acc_max})"
                ),
                hint=f"one extra bit of headroom needs accmem_bits >= "
                     f"{need + 1}",
                node=label, path=path,
            ))
    return diags
