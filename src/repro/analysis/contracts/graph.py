"""Structural graph contract: the engine can execute this IR at all.

Statically mirrors every precondition
:class:`~repro.runtime.engine.InferenceEngine` enforces (or crashes on)
at run time: unique non-reserved node ids, references only to already
produced tensors, supported operators with the right arity, channel
agreement along every edge that types can prove, and sane quantization
metadata (bitwidths in the 2-8 band, finite positive scales, weight
tensors present and finite).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.diagnostics import Diagnostic, ERROR
from repro.core.binseg import SUPPORTED_BITWIDTHS

GRAPH_RULES: dict[str, str] = {
    "GRF-PARSE": "model file cannot be deserialized",
    "GRF-OP": "operator is not implemented by the inference engine",
    "GRF-DUP": "node id duplicated or reserved",
    "GRF-DANGLING": "node references a tensor no earlier node produces",
    "GRF-ARITY": "node wired to the wrong number of inputs",
    "GRF-SHAPE": "tensor shapes disagree across a graph edge",
    "QNT-BITS": "bitwidths missing or outside the supported 2-8 band",
    "QNT-SCALE": "activation scale missing, non-finite or non-positive",
    "QNT-TENSOR": "quantized node's shipped tensors missing or non-finite",
}

_BINARY_OPS = frozenset({"add", "channel_scale"})
_PASSTHROUGH = frozenset({
    "relu", "relu6", "silu", "sigmoid", "identity", "max_pool2d",
    "avg_pool2d", "add",
})


def _err(rule: str, message: str, *, node: str, path: str,
         hint: str = "") -> Diagnostic:
    return Diagnostic(rule=rule, severity=ERROR, message=message,
                      hint=hint, node=node, path=path)


def _check_quant_node(node, label: str, path: str) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for key in ("act_bits", "weight_bits"):
        bits = node.attrs.get(key)
        if not isinstance(bits, int) or bits not in SUPPORTED_BITWIDTHS:
            diags.append(_err(
                "QNT-BITS",
                f"{node.op}: {key}={bits!r} is not a supported bitwidth "
                f"({SUPPORTED_BITWIDTHS[0]}-{SUPPORTED_BITWIDTHS[-1]})",
                node=label, path=path,
                hint="the u-engine executes 2- to 8-bit operands only",
            ))
    scale = node.attrs.get("act_scale")
    if (not isinstance(scale, (int, float)) or isinstance(scale, bool)
            or not math.isfinite(scale) or scale <= 0):
        diags.append(_err(
            "QNT-SCALE",
            f"{node.op}: act_scale={scale!r} must be a finite positive "
            f"number for the integer pipeline to requantize",
            node=label, path=path,
            hint="re-export the model so the learned scale ships with "
                 "the graph",
        ))
    weight = node.tensors.get("weight")
    if weight is None:
        diags.append(_err(
            "QNT-TENSOR",
            f"{node.op}: no 'weight' tensor shipped with the node",
            node=label, path=path,
        ))
    elif not np.all(np.isfinite(weight)):
        diags.append(_err(
            "QNT-TENSOR",
            f"{node.op}: weight tensor contains non-finite values; "
            f"absmax scale computation would poison the whole layer",
            node=label, path=path,
        ))
    return diags


def check_graph_structure(graph, *, path: str = "") -> list[Diagnostic]:
    """Run every structural/dataflow check over one graph."""
    from repro.runtime.graph import SUPPORTED_OPS

    diags: list[Diagnostic] = []
    #: id -> produced channel/feature count (None = statically unknown).
    produced: dict[str, int | None] = {"input": None}
    seen: set[str] = set()
    prev = "input"

    for i, node in enumerate(graph):
        label = node.id or f"n{i}"

        if label == "input":
            diags.append(_err(
                "GRF-DUP", f"node {i} ({node.op}) uses the reserved id "
                f"'input'", node=label, path=path))
        elif label in seen:
            diags.append(_err(
                "GRF-DUP", f"duplicate node id at node {i} ({node.op}); "
                f"its output would overwrite an earlier tensor",
                node=label, path=path,
                hint="assign unique ids (GraphBuilder does this for you)"))
        seen.add(label)

        if node.op not in SUPPORTED_OPS:
            diags.append(_err(
                "GRF-OP", f"unsupported op {node.op!r}",
                node=label, path=path,
                hint=f"engine implements: {', '.join(sorted(SUPPORTED_OPS))}"))
            produced[label] = None
            prev = label
            continue

        inputs = list(node.inputs) or [prev]
        expected_arity = 2 if node.op in _BINARY_OPS else 1
        if len(inputs) != expected_arity:
            diags.append(_err(
                "GRF-ARITY",
                f"{node.op} takes {expected_arity} input(s), wired to "
                f"{len(inputs)}", node=label, path=path))
        in_feats: list[int | None] = []
        for ref in inputs:
            if ref not in produced:
                diags.append(_err(
                    "GRF-DANGLING",
                    f"{node.op} consumes {ref!r}, which no earlier node "
                    f"produces", node=label, path=path,
                    hint="nodes may only reference 'input' or ids of "
                         "nodes above them"))
                in_feats.append(None)
            else:
                in_feats.append(produced[ref])

        upstream = in_feats[0] if in_feats else None
        out_feats = node.out_channels()

        if node.op in ("quant_conv2d", "conv2d"):
            weight = node.tensors.get("weight")
            if weight is not None and weight.ndim == 4:
                groups = int(node.attrs.get("groups", 1) or 1)
                needed = int(weight.shape[1]) * groups
                if upstream is not None and upstream != needed:
                    diags.append(_err(
                        "GRF-SHAPE",
                        f"{node.op} expects {needed} input channels "
                        f"(weight {tuple(weight.shape)} x {groups} "
                        f"groups) but upstream produces {upstream}",
                        node=label, path=path))
                bias = node.tensors.get("bias")
                if bias is not None and bias.size != weight.shape[0]:
                    diags.append(_err(
                        "GRF-SHAPE",
                        f"{node.op} bias has {bias.size} entries for "
                        f"{weight.shape[0]} output channels",
                        node=label, path=path))
        elif node.op in ("quant_linear", "linear"):
            weight = node.tensors.get("weight")
            if weight is not None and weight.ndim == 2:
                if upstream is not None and upstream != weight.shape[1]:
                    diags.append(_err(
                        "GRF-SHAPE",
                        f"{node.op} expects {weight.shape[1]} input "
                        f"features but upstream produces {upstream}",
                        node=label, path=path))
                bias = node.tensors.get("bias")
                if bias is not None and bias.size != weight.shape[0]:
                    diags.append(_err(
                        "GRF-SHAPE",
                        f"{node.op} bias has {bias.size} entries for "
                        f"{weight.shape[0]} output features",
                        node=label, path=path))
        elif node.op == "batchnorm2d":
            if (out_feats is not None and upstream is not None
                    and out_feats != upstream):
                diags.append(_err(
                    "GRF-SHAPE",
                    f"batchnorm2d normalizes {out_feats} channels but "
                    f"upstream produces {upstream}",
                    node=label, path=path))
            out_feats = out_feats if out_feats is not None else upstream
        elif node.op == "add":
            known = [f for f in in_feats if f is not None]
            if len(known) == 2 and known[0] != known[1]:
                diags.append(_err(
                    "GRF-SHAPE",
                    f"add joins branches with {known[0]} and {known[1]} "
                    f"channels", node=label, path=path))
            out_feats = known[0] if known else None
        elif node.op == "channel_scale":
            feats, gates = (in_feats + [None, None])[:2]
            if feats is not None and gates is not None and feats != gates:
                diags.append(_err(
                    "GRF-SHAPE",
                    f"channel_scale gates {gates} channels of a "
                    f"{feats}-channel feature map",
                    node=label, path=path))
            out_feats = feats
        elif node.op in ("global_avg_pool2d",) or node.op in _PASSTHROUGH:
            out_feats = upstream
        elif node.op == "flatten":
            # Spatial extent is not part of the IR, so flattened feature
            # counts are statically unknown (checked again by QNT layers
            # only when provable).
            out_feats = None

        if node.op in ("quant_conv2d", "quant_linear"):
            diags.extend(_check_quant_node(node, label, path))

        produced[label] = out_feats
        prev = label

    return diags
