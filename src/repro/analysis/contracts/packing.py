"""Packing-layout contract: one config's u-vector scheme is executable.

Everything here is decidable from a :class:`~repro.core.config.MixGemmConfig`
alone: the bitwidth pair must map onto whole elements-per-word, kua/kub
must sit in the RF-imposed band and stage through the Source Buffers
without deadlock, and the binary-segmentation spec must fit at least one
cluster into the multiplier.  A violation at this layer means *every*
GEMM under the config fails, regardless of data.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic, ERROR, WARNING
from repro.core.binseg import BinSegError, input_cluster_size
from repro.core.config import MixGemmConfig, select_ku

PACKING_RULES: dict[str, str] = {
    "PACK-LAYOUT": "u-vector layout is inconsistent with the bitwidth pair",
    "PACK-DEPTH": "Source Buffer depth cannot stage one accumulation group",
    "PACK-CLUSTER": "multiplier cannot hold a single input-cluster",
    "PACK-PAD": "kua/kub choice pads more slots than the balanced optimum",
}


def check_config(config: MixGemmConfig, *, node: str = "",
                 path: str = "") -> list[Diagnostic]:
    """Validate one configuration's packing scheme statically."""
    diags: list[Diagnostic] = []
    layout = config.layout
    for problem in layout.consistency_problems():
        diags.append(Diagnostic(
            rule="PACK-LAYOUT", severity=ERROR,
            message=f"{config.name}: {problem}",
            hint="derive the layout via MixGemmConfig/select_ku instead "
                 "of constructing it by hand",
            node=node, path=path,
        ))
    if diags:
        # The remaining checks evaluate derived quantities that are
        # meaningless (or raise) on an inconsistent layout.
        return diags

    if config.source_buffer_depth < config.min_buffer_depth:
        diags.append(Diagnostic(
            rule="PACK-DEPTH", severity=ERROR,
            message=(
                f"{config.name}: source_buffer_depth="
                f"{config.source_buffer_depth} is smaller than the "
                f"kua/kub group size {config.min_buffer_depth}; the "
                f"u-kernel deadlocks staging its first group"
            ),
            hint=f"raise source_buffer_depth to at least "
                 f"{config.min_buffer_depth}",
            node=node, path=path,
        ))

    try:
        input_cluster_size(config.bw_a, config.bw_b, config.mul_width)
    except BinSegError as exc:
        diags.append(Diagnostic(
            rule="PACK-CLUSTER", severity=ERROR,
            message=f"{config.name}: {exc}",
            hint="widen mul_width or narrow the operand bitwidths",
            node=node, path=path,
        ))

    best_kua, best_kub = select_ku(config.bw_a, config.bw_b,
                                   word_bits=config.word_bits)
    best = MixGemmConfig(
        bw_a=config.bw_a, bw_b=config.bw_b, kua=best_kua, kub=best_kub,
        word_bits=config.word_bits,
    )
    if (layout.padding_fraction
            > best.layout.padding_fraction + 1e-12):
        diags.append(Diagnostic(
            rule="PACK-PAD", severity=WARNING,
            message=(
                f"{config.name}: kua={config.kua}, kub={config.kub} pads "
                f"{layout.padding_fraction:.1%} of issued slots; the "
                f"balanced choice kua={best_kua}, kub={best_kub} pads "
                f"{best.layout.padding_fraction:.1%}"
            ),
            hint="drop the explicit kua/kub override to let select_ku "
                 "balance the streams",
            node=node, path=path,
        ))
    return diags
