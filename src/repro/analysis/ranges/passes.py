"""RANGE-* diagnostics over a :class:`RangeAnalysis` (the tight-bound pass).

Sits beside the worst-case ACC-* contract (:mod:`..contracts.overflow`):
where ACC-OVERFLOW certifies against inputs no real network produces
(every operand at its bitwidth extreme, Eq. 5), the RANGE pass bounds
the accumulators under the *derived* value ranges -- statically known
quantized weights, im2col-aware activation codes -- and reports, per
layer, the ``accumulator_bits_required`` those ranges actually need.

Rules:

* ``RANGE-OVERFLOW`` (error) -- some kc-block's derived true-sum
  interval escapes the configured AccMem width: there are reachable
  activations (any interior, padding-free im2col window, with the
  layer's fixed weights) on which the engine wraps, even though the
  layer may be ACC-clean at a wider width.
* ``RANGE-NARROWABLE`` (info) -- the derived bound proves the layer
  correct at *fewer* bits than configured: the headroom a DSE pass or
  narrower AccMem deployment can bank.
* ``RANGE-EQUIV`` (error) -- emitted by the plan-equivalence verifier
  (:mod:`.plancheck`) when a compiled plan's baked state diverges from
  the source graph's proven ranges or wrap behavior.
* ``RANGE-OBSERVED`` (error) -- emitted by the runtime sanitizer
  crosscheck (:mod:`.sanitizer`) when an observed value escapes its
  static interval (a soundness escape; must never happen).

``GRF-PARSE`` is shared with the graph contract pass: both load model
files, and a corrupt artifact is the same finding whichever pass trips
over it first (the SARIF emitter deduplicates the shared metadata).

Suppression: graph nodes have no source lines, so the ``# repro: noqa``
convention maps to a node attribute -- ``"noqa": true`` suppresses every
RANGE finding on that node, ``"noqa": ["RANGE-NARROWABLE"]`` just the
listed rules.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.analysis.diagnostics import (
    Diagnostic,
    ERROR,
    INFO,
)
from repro.core.config import BlockingParams, DEFAULT_ACCMEM_BITS

from .analyzer import RangeAnalysis, analyze_graph

RANGES_RULES: dict[str, str] = {
    "RANGE-OVERFLOW": "derived value ranges provably wrap the AccMem "
                      "width",
    "RANGE-NARROWABLE": "derived ranges prove the layer safe at a "
                        "narrower AccMem width",
    "RANGE-EQUIV": "compiled plan diverges from the source graph's "
                   "proven ranges",
    "RANGE-OBSERVED": "runtime value escaped its static interval "
                      "(soundness violation)",
    # Shared with the graph contract pass -- both deserialize models.
    "GRF-PARSE": "model file cannot be deserialized",
}


def node_noqa_rules(node) -> Optional[frozenset[str]]:
    """Suppressed rules for a graph node; empty set = all, None = none.

    Mirrors the linter's ``# repro: noqa [RULES]`` semantics on the
    node-attribute plane (graph findings have no source line to anchor
    a comment to).
    """
    raw = node.attrs.get("noqa")
    if raw is None or raw is False:
        return None
    if raw is True:
        return frozenset()
    if isinstance(raw, str):
        raw = [raw]
    if isinstance(raw, (list, tuple)):
        return frozenset(str(r) for r in raw)
    return None


def _suppressed(node, rule: str) -> bool:
    rules = node_noqa_rules(node)
    return rules is not None and (not rules or rule in rules)


def check_ranges(graph, *,
                 accmem_bits: int = DEFAULT_ACCMEM_BITS,
                 blocking: Optional[BlockingParams] = None,
                 input_range: Optional[tuple[float, float]] = None,
                 path: str = "",
                 analysis: Optional[RangeAnalysis] = None,
                 ) -> list[Diagnostic]:
    """Tight-bound overflow pass: RANGE-OVERFLOW / RANGE-NARROWABLE.

    Pass a precomputed ``analysis`` to avoid re-running the abstract
    interpreter (the CLI shares one run between diagnostics, the bounds
    table and the plan verifier).
    """
    if analysis is None:
        analysis = analyze_graph(graph, accmem_bits=accmem_bits,
                                 blocking=blocking,
                                 input_range=input_range)
    nodes_by_label = dict(zip(graph.effective_ids(), graph))
    diags: list[Diagnostic] = []
    for label, rec in analysis.records.items():
        node = nodes_by_label.get(label)
        if node is None:
            continue
        if rec.may_wrap:
            if _suppressed(node, "RANGE-OVERFLOW"):
                continue
            diags.append(Diagnostic(
                rule="RANGE-OVERFLOW", severity=ERROR,
                message=(
                    f"{rec.op} ({rec.config_name}): derived kc-block "
                    f"sums reach [{int(rec.acc_lo.min())}, "
                    f"{int(rec.acc_hi.max())}] and need "
                    f"{rec.derived_bits} bits, but AccMem is "
                    f"{rec.accmem_bits}-bit; reachable inputs wrap"
                ),
                hint=(f"needs accmem_bits >= {rec.derived_bits} "
                      f"(Eq. 5 worst case would demand "
                      f"{rec.worst_bits})"),
                node=label, path=path,
            ))
        elif rec.derived_bits < rec.accmem_bits:
            if _suppressed(node, "RANGE-NARROWABLE"):
                continue
            diags.append(Diagnostic(
                rule="RANGE-NARROWABLE", severity=INFO,
                message=(
                    f"{rec.op} ({rec.config_name}): derived ranges "
                    f"prove {rec.derived_bits} accumulator bits "
                    f"suffice ({rec.headroom_bits} spare of the "
                    f"configured {rec.accmem_bits}; Eq. 5 worst case "
                    f"says {rec.worst_bits})"
                ),
                hint="bankable headroom for a narrower AccMem "
                     "deployment or a DSE bitwidth search",
                node=label, path=path,
            ))
    return diags


def check_ranges_file(path: str, *,
                      accmem_bits: int = DEFAULT_ACCMEM_BITS,
                      blocking: Optional[BlockingParams] = None,
                      input_range: Optional[tuple[float, float]] = None,
                      verify_plan: bool = False,
                      ) -> tuple[list[Diagnostic],
                                 Optional[RangeAnalysis]]:
    """Load a serialized model, range-check it, optionally verify plans.

    Returns ``(diagnostics, analysis)``; ``analysis`` is ``None`` when
    the model cannot even be deserialized (reported as ``GRF-PARSE``,
    the same finding the graph contract pass emits for that artifact).
    """
    from repro.runtime.graph import GraphError, GraphModel

    try:
        graph = GraphModel.load(path)
    except (GraphError, OSError) as exc:
        return [Diagnostic(
            rule="GRF-PARSE", severity=ERROR,
            message=f"cannot load model: {exc}", path=path,
            hint="re-export the model with GraphModel.to_json()",
        )], None
    analysis = analyze_graph(graph, accmem_bits=accmem_bits,
                             blocking=blocking, input_range=input_range)
    diags = check_ranges(graph, accmem_bits=accmem_bits,
                         blocking=blocking, input_range=input_range,
                         path=path, analysis=analysis)
    if verify_plan:
        from .plancheck import verify_graph_plans

        diags.extend(verify_graph_plans(
            graph, accmem_bits=accmem_bits, blocking=blocking,
            input_range=input_range, path=path, analysis=analysis))
    return diags, analysis


def table_json(analysis: RangeAnalysis) -> str:
    """The per-layer bounds table as stable, strict JSON.

    Unbounded input endpoints serialize as ``null`` (strict JSON has no
    Infinity literal); quantized-layer bounds are always finite.
    """
    import math

    return json.dumps({
        "accmem_bits": analysis.accmem_bits,
        "input_range": [v if math.isfinite(v) else None
                        for v in analysis.input_range],
        "layers": analysis.table(),
    }, indent=2)


__all__ = [
    "RANGES_RULES",
    "check_ranges",
    "check_ranges_file",
    "node_noqa_rules",
    "table_json",
]
