"""Plan-equivalence verification: compiled plans preserve proven ranges.

:func:`compile_graph` promises bit-exactness by construction -- BN
folding hoists only constant computation, fused activations keep the
per-element float sequence, prepacked panels hold the same integers the
engine would quantize per call.  This module turns that promise into a
*checked* property: :func:`verify_plan` re-derives, from the compiled
plan's actual baked state, the same interval semantics the abstract
interpreter proved over the source graph, and emits ``RANGE-EQUIV``
diagnostics on any divergence.

Per step it checks:

* **baked integer panels** -- exact (``==``) equality between every
  bound GEMM's weight operand (reassembled from the fast path's
  kc-blocks, or the event executor's B matrix) and the analyzer's
  independently quantized panel;
* **wrap behavior** -- the bound GEMM's ``accmem_bits`` and kc-block
  split boundaries match the analysis (same wrap granularity implies
  the same two's-complement semantics);
* **dequantization affine** -- the step's baked ``out_scale``/bias
  equal the analyzer's exact :class:`AffineChannelMap`;
* **epilogue ranges** -- the step's *actual* fused epilogue closures
  (BN folds, activation fusions) are evaluated on the pre-epilogue
  interval endpoints and must land exactly on the source graph's
  proven post-node interval.  A corrupted BN fold, a dropped or
  reordered epilogue entry, or a mislabeled fusion all diverge here.

``verify_plan`` returning no diagnostics is therefore a proof that the
compilation pipeline preserved value ranges and wrap behavior for this
plan, relative to the source-graph analysis.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.diagnostics import Diagnostic, ERROR
from repro.core.config import BlockingParams

from .analyzer import RangeAnalysis, analyze_graph
from .domain import TensorRange

_SPATIAL_SHAPE = (1, -1, 1, 1)


def _diag(step_label: str, path: str, message: str,
          hint: str = "") -> Diagnostic:
    return Diagnostic(rule="RANGE-EQUIV", severity=ERROR,
                      message=message, hint=hint, node=step_label,
                      path=path)


def _bound_gemm_panel(gemm) -> np.ndarray:
    """The (K, N) int64 weight operand a bound GEMM will actually use."""
    if gemm.mode == "fast":
        parts = [blk.astype(np.int64) for _, blk, _ in gemm._blocks]
        return np.concatenate(parts, axis=0)
    return np.asarray(gemm._b, dtype=np.int64)


def _check_bound_gemm(gemm, panel_ref: np.ndarray, rec, step_label: str,
                      group: int, path: str) -> list[Diagnostic]:
    """One bound executor vs the analyzer's independent derivation."""
    diags: list[Diagnostic] = []
    where = f"group {group}" if rec.group_count > 1 else "its GEMM"
    if gemm.config.accmem_bits != rec.accmem_bits:
        diags.append(_diag(
            step_label, path,
            f"{where}: bound executor wraps at "
            f"{gemm.config.accmem_bits} bits but the analysis assumed "
            f"{rec.accmem_bits}",
            hint="compile and analyze with the same accmem_bits"))
        return diags
    panel = _bound_gemm_panel(gemm)
    if panel.shape != panel_ref.shape:
        diags.append(_diag(
            step_label, path,
            f"{where}: baked panel shape {panel.shape} differs from "
            f"the quantized source weights {panel_ref.shape}"))
        return diags
    if not np.array_equal(panel, panel_ref):
        bad = int((panel != panel_ref).sum())
        diags.append(_diag(
            step_label, path,
            f"{where}: baked weight panel diverges from the source "
            f"quantization in {bad} entries",
            hint="the plan is serving different integers than the "
                 "engine would quantize"))
    if gemm.mode == "fast":
        if gemm.kc_eff != rec.kc_logical:
            diags.append(_diag(
                step_label, path,
                f"{where}: fast-path kc split {gemm.kc_eff} differs "
                f"from the analyzed wrap granularity "
                f"{rec.kc_logical}; wrap points would move"))
        else:
            starts = [sl.start for sl, _, _ in gemm._blocks]
            ref = [b.k_start for b in rec.blocks[group]]
            if starts != ref:
                diags.append(_diag(
                    step_label, path,
                    f"{where}: kc-block boundaries {starts} differ "
                    f"from the analyzed blocks {ref}"))
    return diags


def _affine_equal(scale_a, scale_b, shift_a, shift_b) -> bool:
    sa = np.asarray(scale_a, dtype=np.float64).ravel()
    sb = np.asarray(scale_b, dtype=np.float64).ravel()
    ha = np.asarray(shift_a, dtype=np.float64).ravel()
    hb = np.asarray(shift_b, dtype=np.float64).ravel()
    try:
        sa, sb = np.broadcast_arrays(sa, sb)
        ha, hb = np.broadcast_arrays(ha, hb)
    except ValueError:
        return False
    return bool(np.array_equal(sa, sb) and np.array_equal(ha, hb))


def _epilogue_image(step, base: TensorRange, spatial: bool
                    ) -> Optional[TensorRange]:
    """Interval image of the step's actual fused epilogue closures.

    Endpoints are shaped like a 1-pixel batch so the closures' NCHW
    (or 2-D) broadcasting applies verbatim; each closure is per-element
    affine or monotone, so stage-wise endpoint min/max is the exact
    image.  Returns ``None`` on a closure failure.
    """
    shape = _SPATIAL_SHAPE if spatial else (1, -1)
    lo = np.atleast_1d(base.lo.astype(np.float64)).reshape(shape)
    hi = np.atleast_1d(base.hi.astype(np.float64)).reshape(shape)
    for fn in step.epilogue:
        try:
            a, b = fn(lo), fn(hi)
        except Exception:
            return None
        lo, hi = np.minimum(a, b), np.maximum(a, b)
    return TensorRange(lo.ravel() if lo.size > 1 else lo.reshape(()),
                       hi.ravel() if hi.size > 1 else hi.reshape(()))


def _ranges_equal(a: TensorRange, b: TensorRange) -> bool:
    try:
        lo_a, lo_b = np.broadcast_arrays(a.lo, b.lo)
        hi_a, hi_b = np.broadcast_arrays(a.hi, b.hi)
    except ValueError:
        return False
    return bool(np.array_equal(lo_a, lo_b) and np.array_equal(hi_a, hi_b))


def verify_plan(plan, *,
                analysis: Optional[RangeAnalysis] = None,
                blocking: Optional[BlockingParams] = None,
                input_range: Optional[tuple[float, float]] = None,
                path: str = "") -> list[Diagnostic]:
    """Prove a compiled plan preserves the source graph's ranges.

    Returns the (possibly empty) list of ``RANGE-EQUIV`` diagnostics;
    empty means every baked panel, wrap parameter, dequantization
    affine and fused epilogue reproduces the analyzer's intervals
    exactly.
    """
    if analysis is None:
        analysis = analyze_graph(
            plan.graph, accmem_bits=plan.info.accmem_bits,
            blocking=blocking, input_range=input_range)
    diags: list[Diagnostic] = []
    if plan.info.accmem_bits != analysis.accmem_bits:
        diags.append(_diag(
            "<plan>", path,
            f"plan compiled at accmem_bits={plan.info.accmem_bits} but "
            f"analysis ran at {analysis.accmem_bits}"))
        return diags
    for step in plan.steps:
        base = analysis.node_ranges.get(step.source_label)
        want = analysis.node_ranges.get(step.label)
        if base is None or want is None:
            diags.append(_diag(
                step.label, path,
                f"step {step.label!r} (base {step.source_label!r}) has "
                f"no counterpart in the source-graph analysis",
                hint="plan and analysis disagree about node labels"))
            continue

        spatial = True
        rec = analysis.records.get(getattr(step, "stats_label", ""))
        quant_gemm = getattr(step, "quant", step.op == "quant_linear") \
            and getattr(step, "backend", "") == "mixgemm"
        if quant_gemm and rec is not None:
            gemms = getattr(step, "gemms", None)
            if gemms is None:
                single = getattr(step, "gemm", None)
                gemms = [single] if single is not None else []
                spatial = False
            if len(gemms) != rec.group_count:
                diags.append(_diag(
                    step.label, path,
                    f"plan binds {len(gemms)} GEMM executors but the "
                    f"analysis derived {rec.group_count} groups"))
            else:
                for g, gemm in enumerate(gemms):
                    diags.extend(_check_bound_gemm(
                        gemm, rec.weights_q[g], rec, step.label, g,
                        path))
            scale = getattr(step, "_out_scale", None)
            bias = getattr(step, "_bias", None)
            shift = bias if bias is not None else 0.0
            if scale is not None and not _affine_equal(
                    scale, rec.out_affine.scale, shift,
                    rec.out_affine.shift):
                diags.append(_diag(
                    step.label, path,
                    "baked dequantization scale/bias diverge from the "
                    "source graph's affine map"))
        elif step.op in ("quant_linear", "linear", "flatten",
                         "global_avg_pool2d"):
            spatial = False

        image = _epilogue_image(step, base, spatial)
        if image is None:
            diags.append(_diag(
                step.label, path,
                f"epilogue of step {step.label!r} failed on interval "
                f"endpoints; cannot prove range preservation"))
            continue
        if not _ranges_equal(image, want):
            obs = image.collapse()
            exp = want.collapse()
            diags.append(_diag(
                step.label, path,
                f"epilogue image [{float(obs.lo)}, {float(obs.hi)}] "
                f"does not reproduce the source graph's proven "
                f"[{float(exp.lo)}, {float(exp.hi)}] "
                f"(fused: {', '.join(step.fused) or 'none'})",
                hint="a BN fold or activation fusion changed the "
                     "layer's value semantics"))
    return diags


def verify_graph_plans(graph, *, accmem_bits: int,
                       blocking: Optional[BlockingParams] = None,
                       input_range: Optional[tuple[float, float]] = None,
                       path: str = "",
                       analysis: Optional[RangeAnalysis] = None,
                       ) -> list[Diagnostic]:
    """Compile and verify the deployment-relevant plans of ``graph``.

    Covers the fused and unfused mixgemm compilations (the shapes
    ``repro run``/``repro serve`` deploy); compile failures surface as
    ``RANGE-EQUIV`` findings rather than exceptions so a CI lane can
    report them.
    """
    from repro.runtime.graph import GraphError
    from repro.runtime.plan import compile_graph

    if analysis is None:
        analysis = analyze_graph(graph, accmem_bits=accmem_bits,
                                 blocking=blocking,
                                 input_range=input_range)
    diags: list[Diagnostic] = []
    for fuse in (True, False):
        try:
            plan = compile_graph(graph, backend="mixgemm",
                                 gemm_backend="auto",
                                 accmem_bits=accmem_bits, fuse=fuse)
        except (GraphError, ValueError) as exc:
            diags.append(_diag(
                "<compile>", path,
                f"cannot compile the {'fused' if fuse else 'unfused'} "
                f"plan: {exc}"))
            continue
        diags.extend(verify_plan(plan, analysis=analysis, path=path))
    return diags


__all__ = ["verify_graph_plans", "verify_plan"]
