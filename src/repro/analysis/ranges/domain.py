"""Abstract domains for the range analyzer: intervals and affine maps.

Two domains, matched to what quantized inference actually computes:

* :class:`TensorRange` -- a per-tensor interval ``[lo, hi]``, either one
  scalar pair (shape ``()``) or one pair per channel (shape ``(C,)``).
  Channel resolution is what makes conv bounds tight: per-channel weight
  scales mean per-channel output magnitudes, and collapsing them to one
  scalar forfeits most of the precision the analyzer exists to prove.
* :class:`AffineChannelMap` -- a per-channel affine transform
  ``y = scale * x + shift``.  Dequantization, bias addition and
  batch-norm are all affine per channel, so conv -> BN -> scale chains
  compose into a single exact map; the plan-equivalence verifier
  compares the source graph's composed map against what a compiled
  plan's epilogue actually bakes.

Soundness convention: every transfer helper here evaluates the *same
numpy expression the runtime evaluates*, on the interval endpoints, and
takes the elementwise min/max.  For per-element monotone (or per-element
affine) functions this is the exact interval image -- and because
rounding is monotone (``x <= y`` implies ``fl(x) <= fl(y)`` for every
IEEE-754 rounding step the runtime performs), the bounds hold for the
floating-point values the engine computes, not just the reals.  The one
non-monotone activation in the op set, SiLU, gets a dedicated transfer
with its global minimum widened outward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.diagnostics import AnalysisError

#: SiLU's unique interior extremum: ``x * sigmoid(x)`` has one global
#: minimum near ``x* = -1.27846``; the value is widened one ulp outward
#: so the constant stays a sound lower bound for every float evaluation.
_SILU_XMIN = -1.2784645427610738
_SILU_MIN = float(np.nextafter(
    _SILU_XMIN / (1.0 + np.exp(-_SILU_XMIN)), -np.inf))


def _as_bound(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim > 1:
        raise AnalysisError(
            f"range bounds must be scalar or 1-D per-channel, got shape "
            f"{arr.shape}")
    return arr


@dataclass(frozen=True)
class TensorRange:
    """Interval ``[lo, hi]`` over one tensor, scalar or per-channel.

    ``lo``/``hi`` are float64 arrays of identical shape: ``()`` for a
    tensor-wide bound, ``(C,)`` for a bound per channel (axis 1 of an
    NCHW tensor, or the feature axis of a 2-D tensor).  Infinities are
    legal (the default model-input range is ``(-inf, inf)``); NaN is
    not a bound.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = _as_bound(self.lo)
        hi = _as_bound(self.hi)
        if lo.shape != hi.shape:
            raise AnalysisError(
                f"range lo/hi shapes differ: {lo.shape} vs {hi.shape}")
        if np.isnan(lo).any() or np.isnan(hi).any():
            raise AnalysisError("NaN is not a valid range bound")
        if (lo > hi).any():
            raise AnalysisError("range has lo > hi")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- constructors ------------------------------------------------

    @staticmethod
    def scalar(lo: float, hi: float) -> "TensorRange":
        return TensorRange(np.float64(lo), np.float64(hi))

    @staticmethod
    def per_channel(lo, hi) -> "TensorRange":
        return TensorRange(np.atleast_1d(np.asarray(lo, dtype=np.float64)),
                           np.atleast_1d(np.asarray(hi, dtype=np.float64)))

    # -- structure ---------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        return self.lo.ndim == 0

    @property
    def channels(self) -> int | None:
        """Channel count for per-channel ranges, ``None`` for scalar."""
        return None if self.is_scalar else int(self.lo.size)

    def collapse(self) -> "TensorRange":
        """The scalar hull ``[min lo, max hi]`` (always sound)."""
        if self.is_scalar:
            return self
        return TensorRange(self.lo.min(), self.hi.max())

    def widen_to_include(self, value: float) -> "TensorRange":
        """Smallest range containing both this one and ``value``."""
        return TensorRange(np.minimum(self.lo, value),
                           np.maximum(self.hi, value))

    # -- queries -----------------------------------------------------

    def contains_scalar(self, lo: float, hi: float,
                        atol: float = 0.0) -> bool:
        """Whether observed extrema ``[lo, hi]`` lie inside the hull."""
        hull = self.collapse()
        return bool(lo >= float(hull.lo) - atol
                    and hi <= float(hull.hi) + atol)

    def map_monotone(self, fn: Callable[[np.ndarray], np.ndarray]
                     ) -> "TensorRange":
        """Image under a per-element monotone (or affine) ``fn``.

        Evaluates ``fn`` on both endpoint arrays and takes elementwise
        min/max -- exact for monotone increasing, decreasing, and
        per-element affine maps of either sign.
        """
        a = fn(self.lo)
        b = fn(self.hi)
        return TensorRange(np.minimum(a, b), np.maximum(a, b))

    def __add__(self, other: "TensorRange") -> "TensorRange":
        return TensorRange(self.lo + other.lo, self.hi + other.hi)

    def mul(self, other: "TensorRange") -> "TensorRange":
        """Interval product (four-corner rule, zero-safe)."""
        with np.errstate(invalid="ignore"):
            corners = [self.lo * other.lo, self.lo * other.hi,
                       self.hi * other.lo, self.hi * other.hi]
        # 0 * inf is NaN under IEEE rules but 0 under interval
        # semantics (the factor *is* zero); repair those corners.
        corners = [np.where(np.isnan(c), 0.0, c) for c in corners]
        lo = np.minimum.reduce(corners)
        hi = np.maximum.reduce(corners)
        return TensorRange(lo, hi)


def silu_range(r: TensorRange) -> TensorRange:
    """Sound SiLU image: endpoints, plus the interior global minimum.

    SiLU decreases on ``(-inf, x*)`` and increases after, so the max is
    always at an endpoint; the min is the interior extremum whenever
    the interval straddles ``x*``, else an endpoint.
    """
    from repro.runtime import ops

    a = ops.silu(r.lo)
    b = ops.silu(r.hi)
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    straddles = (r.lo <= _SILU_XMIN) & (r.hi >= _SILU_XMIN)
    lo = np.where(straddles, np.minimum(lo, _SILU_MIN), lo)
    return TensorRange(lo, hi)


@dataclass(frozen=True)
class AffineChannelMap:
    """Per-channel affine transform ``y = scale * x + shift``.

    ``scale``/``shift`` are scalars or ``(C,)`` vectors.  BN folding,
    dequantization scales and bias addition are all instances; chains
    compose exactly (no interval widening) via :meth:`then`.
    """

    scale: np.ndarray
    shift: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "scale",
                           np.asarray(self.scale, dtype=np.float64))
        object.__setattr__(self, "shift",
                           np.asarray(self.shift, dtype=np.float64))

    @staticmethod
    def identity() -> "AffineChannelMap":
        return AffineChannelMap(np.float64(1.0), np.float64(0.0))

    def then(self, other: "AffineChannelMap") -> "AffineChannelMap":
        """The composition ``other(self(x))``, still one affine map."""
        return AffineChannelMap(other.scale * self.scale,
                                other.scale * self.shift + other.shift)

    def apply(self, r: TensorRange) -> TensorRange:
        """Exact interval image (sign-aware per channel)."""
        return r.map_monotone(lambda x: x * self.scale + self.shift)

    def matches(self, other: "AffineChannelMap") -> bool:
        """Bitwise equality -- the verifier's notion of 'same math'."""
        return (np.array_equal(np.broadcast_arrays(self.scale,
                                                   other.scale)[0],
                               np.broadcast_arrays(self.scale,
                                                   other.scale)[1])
                and np.array_equal(*np.broadcast_arrays(self.shift,
                                                        other.shift)))


def signed_contributions(weights: np.ndarray, act_lo: np.ndarray,
                         act_hi: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Per-(k, feature) bounds of ``w[k, f] * a_k``, ``a_k`` interval-free.

    ``weights`` is the ``(K, F)`` GEMM B-panel; ``act_lo``/``act_hi``
    bound each of the K A-operand entries (shape ``(K,)``).  The sign
    split keeps ``0 * inf`` out of the arithmetic: a zero weight
    contributes exactly zero whatever the activation does.
    """
    w = weights
    lo_k = act_lo[:, None]
    hi_k = act_hi[:, None]
    with np.errstate(invalid="ignore"):
        p_lo = w * lo_k
        p_hi = w * hi_k
    zero = np.zeros_like(p_lo)
    lo = np.where(w > 0, p_lo, np.where(w < 0, p_hi, zero))
    hi = np.where(w > 0, p_hi, np.where(w < 0, p_lo, zero))
    return lo, hi


def wrap_interval(lo: np.ndarray, hi: np.ndarray, bits: int
                  ) -> tuple[np.ndarray, np.ndarray, bool]:
    """Two's-complement wrap of an integer-valued interval.

    Modular arithmetic makes per-addition wrapping equal one final wrap
    of the true sum, so: if the whole true-value interval fits the
    ``bits``-wide signed range, the register holds the true value and
    the interval passes through exactly; otherwise the wrapped value
    can be anything representable and the sound image is the full
    ``[-2^(b-1), 2^(b-1)-1]`` range.  Returns ``(lo', hi', wrapped)``
    with ``wrapped`` true when any channel could wrap.
    """
    from repro.core.config import ACCMEM_CONTAINER_BITS

    if bits >= ACCMEM_CONTAINER_BITS:
        # The int64 container the analysis (and the engine) computes in
        # is itself the wrapped representation at >= 64 bits.
        return lo, hi, False
    amin = np.int64(-(1 << (bits - 1)))
    amax = np.int64((1 << (bits - 1)) - 1)
    escapes = (lo < amin) | (hi > amax)
    if not escapes.any():
        return lo, hi, False
    return (np.where(escapes, amin, lo), np.where(escapes, amax, hi),
            True)


def _bits_for_value(value: int) -> int:
    """Two's-complement bits holding ``value`` (0 -> 1 bit)."""
    if value >= 0:
        return value.bit_length() + 1
    return (-value - 1).bit_length() + 1


def bits_required_interval(lo: np.ndarray, hi: np.ndarray) -> int:
    """Smallest signed width holding every integer in ``[lo, hi]``."""
    lo_min = int(np.min(lo))
    hi_max = int(np.max(hi))
    return max(_bits_for_value(lo_min), _bits_for_value(hi_max))


__all__ = [
    "AffineChannelMap",
    "TensorRange",
    "bits_required_interval",
    "signed_contributions",
    "silu_range",
    "wrap_interval",
]
