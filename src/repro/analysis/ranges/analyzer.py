"""Abstract interpretation of deployment graphs over interval domains.

:func:`analyze_graph` walks a :class:`~repro.runtime.graph.GraphModel`
in execution order and propagates a :class:`TensorRange` through every
node, mirroring -- expression for expression -- what the inference
engine computes:

* model input: the caller-declared ``input_range`` (default unbounded;
  the activation quantizer's clip makes unbounded inputs sound and
  still yields the full-code-range bound);
* quantized GEMM layers: activations pass through the *same*
  ``round(x / scale + zp).clip(qmin, qmax)`` expression the engine
  evaluates, weights are quantized exactly as the engine quantizes them
  (per-channel absmax, so the panel entries are statically known
  integers), and the inner product is bounded per kc-block with the
  im2col lowering taken into account -- per-input-channel activation
  bounds are expanded along the ``(c, kh, kw)`` row layout, and
  ``padding > 0`` widens the code range to include the zero codes the
  padded halo contributes;
* two's-complement wrap: each kc-block's true-sum interval either fits
  the configured ``accmem_bits`` (register holds the true value; exact
  pass-through) or may wrap (sound widening to the full representable
  range), matching both the event engine's per-addition wrap and the
  fast path's per-block :func:`~repro.core.fastpath.wrap_signed_array`;
* epilogues: dequantization scales, bias and batch-norm are composed
  as exact per-channel :class:`AffineChannelMap`\\ s; activations use
  monotone endpoint evaluation (SiLU gets its non-monotone special
  case).

Everything downstream -- the RANGE-* diagnostics, the plan-equivalence
verifier and the runtime sanitizer crosscheck -- consumes the
:class:`RangeAnalysis` this module produces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.contracts.overflow import node_config
from repro.analysis.diagnostics import AnalysisError
from repro.core.binseg import accumulator_bits_required
from repro.core.config import BlockingParams, DEFAULT_ACCMEM_BITS
from repro.core.packing import aligned_kc
from repro.nn.functional_quant import weight_absmax_scale
from repro.quant.affine import QuantParams, quantize

from .domain import (
    AffineChannelMap,
    TensorRange,
    bits_required_interval,
    signed_contributions,
    silu_range,
    wrap_interval,
)

_UNKNOWN = TensorRange.scalar(-math.inf, math.inf)


def _runtime_blocking() -> BlockingParams:
    from repro.runtime.engine import SIM_BLOCKING

    return SIM_BLOCKING


@dataclass(frozen=True)
class BlockBound:
    """True-sum interval of one kc-block, per output feature (pre-wrap)."""

    k_start: int
    k_stop: int
    lo: np.ndarray  #: (F_g,) int64 lower bounds of the true block sum
    hi: np.ndarray  #: (F_g,) int64 upper bounds of the true block sum
    wraps: bool     #: True when any feature's interval escapes AccMem


@dataclass
class GemmRangeRecord:
    """Everything the analysis proved about one quantized GEMM layer."""

    label: str
    op: str
    config_name: str
    k: int
    kc_logical: int
    group_count: int
    accmem_bits: int
    #: Quantized A-operand code interval, im2col-aware (includes the
    #: padding zero codes when the conv pads).
    act: TensorRange
    #: Per-group ``(K, F_g)`` quantized B-panels, exactly as the engine
    #: builds them -- statically known integers.
    weights_q: list[np.ndarray] = field(default_factory=list)
    #: Per-group kc-block bounds (the wrap-granular view).
    blocks: list[list[BlockBound]] = field(default_factory=list)
    #: Post-wrap accumulator interval per output channel (int64).
    acc_lo: np.ndarray = None
    acc_hi: np.ndarray = None
    derived_bits: int = 0
    worst_bits: int = 0
    may_wrap: bool = False
    #: Exact affine map from the integer accumulator to the node output.
    out_affine: AffineChannelMap = None
    out: TensorRange = None

    @property
    def acc(self) -> TensorRange:
        """Float mirror of the accumulator interval (for rendering)."""
        return TensorRange(self.acc_lo.astype(np.float64),
                           self.acc_hi.astype(np.float64))

    @property
    def headroom_bits(self) -> int:
        return self.accmem_bits - self.derived_bits


@dataclass
class RangeAnalysis:
    """Result of :func:`analyze_graph`: per-node ranges + GEMM records."""

    accmem_bits: int
    blocking: BlockingParams
    input_range: tuple[float, float]
    #: label -> proven output interval, for every node plus ``"input"``.
    node_ranges: dict[str, TensorRange] = field(default_factory=dict)
    #: label -> GEMM-layer record, quantized GEMM nodes only.
    records: dict[str, GemmRangeRecord] = field(default_factory=dict)

    def table(self) -> list[dict]:
        """Queryable per-layer bounds table (DSE/autotuner input)."""
        rows = []
        for label, r in self.records.items():
            rows.append({
                "layer": label,
                "op": r.op,
                "config": r.config_name,
                "k": r.k,
                "kc_logical": r.kc_logical,
                "groups": r.group_count,
                "acc_lo": int(r.acc_lo.min()),
                "acc_hi": int(r.acc_hi.max()),
                "derived_bits": r.derived_bits,
                "worst_case_bits": r.worst_bits,
                "accmem_bits": r.accmem_bits,
                "headroom_bits": r.headroom_bits,
                "may_wrap": r.may_wrap,
                "out_lo": float(r.out.lo.min()),
                "out_hi": float(r.out.hi.max()),
            })
        return rows

    def render_table(self) -> str:
        """Aligned text table of the per-layer derived bounds."""
        header = ("layer", "op", "config", "K", "kc", "derived",
                  "worst", "accmem", "headroom", "wrap?")
        rows = [header]
        for row in self.table():
            rows.append((
                row["layer"], row["op"], row["config"], str(row["k"]),
                str(row["kc_logical"]), str(row["derived_bits"]),
                str(row["worst_case_bits"]), str(row["accmem_bits"]),
                str(row["headroom_bits"]),
                "MAY-WRAP" if row["may_wrap"] else "no",
            ))
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths))
                 for row in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)


# -- per-op transfer helpers ---------------------------------------------------


def _quantize_range(r: TensorRange, qp: QuantParams) -> TensorRange:
    """Image under the engine's activation quantizer (monotone, exact)."""
    scale = float(qp.scale)
    zp = float(qp.zero_point)

    def q(x: np.ndarray) -> np.ndarray:
        return np.clip(np.round(x / scale + zp), qp.qmin, qp.qmax)

    return r.map_monotone(q)


def _per_k_code_bounds(act: TensorRange, *, channels: int, start: int,
                       span: int, repeat: int, k: int
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Expand an activation code range along the im2col row layout.

    One GEMM row holds ``span`` channels x ``repeat`` kernel positions
    in ``(c, kh, kw)`` order; per-channel bounds repeat blockwise, a
    scalar bound broadcasts.  Returns int64 ``(K,)`` lo/hi vectors.
    """
    if act.channels == channels:
        lo = np.repeat(act.lo[start:start + span], repeat)
        hi = np.repeat(act.hi[start:start + span], repeat)
    else:
        hull = act.collapse()
        lo = np.full(k, float(hull.lo))
        hi = np.full(k, float(hull.hi))
    return lo.astype(np.int64), hi.astype(np.int64)


def _valid_act_scale(attrs: dict) -> bool:
    scale = attrs.get("act_scale")
    return (isinstance(scale, (int, float)) and math.isfinite(scale)
            and scale > 0)


class _GraphInterpreter:
    """One analysis run; dispatches per-op transfer functions."""

    def __init__(self, accmem_bits: int, blocking: BlockingParams,
                 input_range: tuple[float, float]) -> None:
        self.accmem_bits = accmem_bits
        self.blocking = blocking
        self.input_range = input_range
        self.node_ranges: dict[str, TensorRange] = {
            "input": TensorRange.scalar(*input_range),
        }
        self.records: dict[str, GemmRangeRecord] = {}
        #: label -> whether the tensor still carries spatial dims.
        self._spatial: dict[str, bool] = {"input": True}

    def run(self, graph) -> RangeAnalysis:
        from repro.runtime import ops  # shared kernels, lazy for cycles

        self._ops = ops
        prev = "input"
        for i, node in enumerate(graph):
            label = node.id or f"n{i}"
            input_ids = list(node.inputs) if node.inputs else [prev]
            ins = [self.node_ranges.get(name, _UNKNOWN)
                   for name in input_ids]
            spatial_in = [self._spatial.get(name, True)
                          for name in input_ids]
            handler = getattr(self, f"_op_{node.op}", None)
            if handler is None:
                out, spatial = _UNKNOWN, spatial_in[0]
            else:
                out, spatial = handler(node, label, ins, spatial_in)
            self.node_ranges[label] = out
            self._spatial[label] = spatial
            prev = label
        return RangeAnalysis(
            accmem_bits=self.accmem_bits, blocking=self.blocking,
            input_range=self.input_range, node_ranges=self.node_ranges,
            records=self.records,
        )

    # -- elementwise / shape ops -------------------------------------

    def _op_relu(self, node, label, ins, spatial):
        return ins[0].map_monotone(self._ops.relu), spatial[0]

    def _op_relu6(self, node, label, ins, spatial):
        return ins[0].map_monotone(self._ops.relu6), spatial[0]

    def _op_sigmoid(self, node, label, ins, spatial):
        return ins[0].map_monotone(self._ops.sigmoid), spatial[0]

    def _op_silu(self, node, label, ins, spatial):
        return silu_range(ins[0]), spatial[0]

    def _op_identity(self, node, label, ins, spatial):
        return ins[0], spatial[0]

    def _op_max_pool2d(self, node, label, ins, spatial):
        # A max/avg over values in [lo, hi] stays in [lo, hi]: exact.
        return ins[0], spatial[0]

    _op_avg_pool2d = _op_max_pool2d

    def _op_global_avg_pool2d(self, node, label, ins, spatial):
        return ins[0], False

    def _op_flatten(self, node, label, ins, spatial):
        # Flattening NCHW interleaves channels with unknown spatial
        # extent, so per-channel resolution collapses; a 2-D input
        # ((N, C), e.g. after global_avg_pool) keeps its features.
        r = ins[0]
        if spatial[0]:
            return r.collapse(), False
        return r, False

    def _op_batchnorm2d(self, node, label, ins, spatial):
        try:
            scale, shift = self._ops.batchnorm_params(
                node.tensors, node.attrs["eps"])
        except (KeyError, TypeError, ValueError):
            return _UNKNOWN, spatial[0]
        # batchnorm_params ships NCHW-broadcast (1, C, 1, 1) arrays;
        # the per-channel domain wants flat (C,) vectors (same values).
        r = ins[0]
        if r.channels is not None and r.channels != scale.size:
            r = r.collapse()
        bn = AffineChannelMap(scale.ravel(), shift.ravel())
        return bn.apply(r), spatial[0]

    def _op_add(self, node, label, ins, spatial):
        a, b = ins[0], ins[1] if len(ins) > 1 else _UNKNOWN
        if (a.channels is not None and b.channels is not None
                and a.channels != b.channels):
            a, b = a.collapse(), b.collapse()
        return a + b, spatial[0]

    def _op_channel_scale(self, node, label, ins, spatial):
        x, s = ins[0], ins[1] if len(ins) > 1 else _UNKNOWN
        if (x.channels is not None and s.channels is not None
                and x.channels != s.channels):
            x, s = x.collapse(), s.collapse()
        return x.mul(s), spatial[0]

    # -- GEMM layers --------------------------------------------------

    def _op_quant_conv2d(self, node, label, ins, spatial):
        rec = self._quant_gemm(node, label, ins[0], conv=True)
        if rec is None:
            return _UNKNOWN, True
        return rec.out, True

    def _op_quant_linear(self, node, label, ins, spatial):
        rec = self._quant_gemm(node, label, ins[0], conv=False)
        if rec is None:
            return _UNKNOWN, False
        return rec.out, False

    def _quant_gemm(self, node, label, in_range: TensorRange, *,
                    conv: bool) -> Optional[GemmRangeRecord]:
        attrs = node.attrs
        w = node.tensors.get("weight")
        config = node_config(node, accmem_bits=self.accmem_bits,
                             blocking=self.blocking)
        want_ndim = 4 if conv else 2
        if (w is None or config is None or w.ndim != want_ndim
                or not _valid_act_scale(attrs)
                or not np.isfinite(w).all()):
            return None  # structurally broken; the graph contract reports it
        act_qp = QuantParams(
            scale=attrs["act_scale"], zero_point=0.0,
            bits=attrs["act_bits"], signed=attrs["act_signed"],
        )
        w_scale = weight_absmax_scale(w, attrs["weight_bits"],
                                      channel_axis=0)
        wgt_qp = QuantParams(scale=w_scale, zero_point=0.0,
                             bits=attrs["weight_bits"], signed=True,
                             axis=0)
        w_q = quantize(w, wgt_qp)

        act = _quantize_range(in_range, act_qp)
        if conv:
            groups = int(attrs.get("groups", 1) or 1)
            out_channels, cpg, kh, kw = w.shape
            if attrs.get("padding", 0):
                # im2row pads the *quantized* tensor with zero codes.
                act = act.widen_to_include(0.0)
            k = cpg * kh * kw
            repeat, span, channels = kh * kw, cpg, groups * cpg
        else:
            groups = 1
            out_channels, k = w.shape
            repeat, span, channels = 1, k, k
        if groups <= 0 or out_channels % groups:
            return None
        fpg = out_channels // groups

        layout = config.layout
        kc_logical = aligned_kc(self.blocking.kc * layout.elems_a,
                                layout.group_elements)
        rec = GemmRangeRecord(
            label=label, op=node.op, config_name=config.name, k=k,
            kc_logical=kc_logical, group_count=groups,
            accmem_bits=self.accmem_bits, act=act,
        )
        acc_lo_parts, acc_hi_parts = [], []
        derived = 0
        for g in range(groups):
            panel = w_q[g * fpg:(g + 1) * fpg].reshape(fpg, -1).T
            rec.weights_q.append(panel)
            a_lo, a_hi = _per_k_code_bounds(
                act, channels=channels, start=g * span, span=span,
                repeat=repeat, k=k)
            c_lo, c_hi = signed_contributions(panel, a_lo, a_hi)
            group_blocks: list[BlockBound] = []
            post_lo = np.zeros(fpg, dtype=np.int64)
            post_hi = np.zeros(fpg, dtype=np.int64)
            for pc in range(0, k, kc_logical):
                stop = min(pc + kc_logical, k)
                b_lo = c_lo[pc:stop].sum(axis=0)
                b_hi = c_hi[pc:stop].sum(axis=0)
                derived = max(derived,
                              bits_required_interval(b_lo, b_hi))
                w_lo, w_hi, wraps = wrap_interval(b_lo, b_hi,
                                                  self.accmem_bits)
                group_blocks.append(BlockBound(
                    k_start=pc, k_stop=stop, lo=b_lo, hi=b_hi,
                    wraps=wraps))
                post_lo = post_lo + w_lo
                post_hi = post_hi + w_hi
            rec.blocks.append(group_blocks)
            acc_lo_parts.append(post_lo)
            acc_hi_parts.append(post_hi)
        rec.acc_lo = np.concatenate(acc_lo_parts)
        rec.acc_hi = np.concatenate(acc_hi_parts)
        rec.derived_bits = derived
        rec.worst_bits = accumulator_bits_required(
            min(k, kc_logical), config.bw_a, config.bw_b,
            signed_a=config.signed_a, signed_b=config.signed_b)
        rec.may_wrap = any(b.wraps for blocks in rec.blocks
                           for b in blocks)

        # Dequantization + bias, the exact engine expression:
        # y = acc.astype(float64) * (act_scale * w_scale) [+ bias].
        out_scale = float(act_qp.scale) * wgt_qp.scale
        bias = node.tensors.get("bias")
        shift = (np.asarray(bias, dtype=np.float64)
                 if bias is not None else np.float64(0.0))
        rec.out_affine = AffineChannelMap(out_scale, shift)
        acc_f = TensorRange(rec.acc_lo.astype(np.float64),
                            rec.acc_hi.astype(np.float64))
        rec.out = rec.out_affine.apply(acc_f)
        self.records[label] = rec
        return rec

    # -- float GEMMs (no quantization, no wrap) -----------------------

    def _op_conv2d(self, node, label, ins, spatial):
        out = self._float_gemm(node, ins[0], conv=True)
        return out, True

    def _op_linear(self, node, label, ins, spatial):
        out = self._float_gemm(node, ins[0], conv=False)
        return out, False

    def _float_gemm(self, node, in_range: TensorRange, *,
                    conv: bool) -> TensorRange:
        attrs = node.attrs
        w = node.tensors.get("weight")
        want_ndim = 4 if conv else 2
        if w is None or w.ndim != want_ndim or not np.isfinite(w).all():
            return _UNKNOWN
        act = in_range
        if conv:
            groups = int(attrs.get("groups", 1) or 1)
            out_channels, cpg, kh, kw = w.shape
            if attrs.get("padding", 0):
                act = act.widen_to_include(0.0)
            k = cpg * kh * kw
            repeat, span, channels = kh * kw, cpg, groups * cpg
        else:
            groups = 1
            out_channels, k = w.shape
            repeat, span, channels = 1, k, k
        if groups <= 0 or out_channels % groups:
            return _UNKNOWN
        fpg = out_channels // groups
        lo_parts, hi_parts = [], []
        for g in range(groups):
            panel = w[g * fpg:(g + 1) * fpg].reshape(fpg, -1).T
            if act.channels == channels:
                a_lo = np.repeat(act.lo[g * span:(g + 1) * span], repeat)
                a_hi = np.repeat(act.hi[g * span:(g + 1) * span], repeat)
            else:
                hull = act.collapse()
                a_lo = np.full(k, float(hull.lo))
                a_hi = np.full(k, float(hull.hi))
            c_lo, c_hi = signed_contributions(panel, a_lo, a_hi)
            lo_parts.append(c_lo.sum(axis=0))
            hi_parts.append(c_hi.sum(axis=0))
        lo = np.concatenate(lo_parts)
        hi = np.concatenate(hi_parts)
        bias = node.tensors.get("bias")
        if bias is not None:
            lo = lo + np.asarray(bias, dtype=np.float64)
            hi = hi + np.asarray(bias, dtype=np.float64)
        return TensorRange(lo, hi)


def analyze_graph(graph, *,
                  accmem_bits: int = DEFAULT_ACCMEM_BITS,
                  blocking: Optional[BlockingParams] = None,
                  input_range: Optional[tuple[float, float]] = None,
                  ) -> RangeAnalysis:
    """Propagate interval domains through ``graph``; see the module doc.

    ``input_range`` bounds the model input tensor; ``None`` means
    unbounded (sound for any input -- the activation quantizer's clip
    still yields finite code ranges).  ``blocking`` defaults to the
    engine's :data:`~repro.runtime.engine.SIM_BLOCKING` so the wrap
    granularity matches what actually runs.
    """
    if blocking is None:
        blocking = _runtime_blocking()
    if input_range is None:
        input_range = (-math.inf, math.inf)
    lo, hi = float(input_range[0]), float(input_range[1])
    if math.isnan(lo) or math.isnan(hi) or lo > hi:
        raise AnalysisError(
            f"invalid input range [{input_range[0]}, {input_range[1]}]")
    interp = _GraphInterpreter(accmem_bits, blocking, (lo, hi))
    return interp.run(graph)


__all__ = [
    "BlockBound",
    "GemmRangeRecord",
    "RangeAnalysis",
    "analyze_graph",
]
