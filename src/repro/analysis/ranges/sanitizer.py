"""Runtime range sanitizer: observed extrema vs static intervals.

The dynamic half of the range analyzer, mirroring the lock-sanitizer
pattern: a :class:`RangeTrace` installs itself as the
:mod:`repro.runtime.observe` hook, records the running min/max of every
quantized-GEMM operand stream (``act`` codes, post-wrap ``acc``
integers, layer ``out`` floats), and :func:`crosscheck_ranges` then
replays the static analysis against what actually flowed through the
engine or a compiled plan.

The contract is *no false negatives*: every observed value must lie
inside the statically proven interval for its (layer, kind) stream.
An escape means the abstract interpreter's soundness argument is
broken for this build -- the differential test in
``tests/analysis/test_ranges_sanitizer.py`` sweeps the full 2..8-bit
space to enforce this.  The converse (static bounds wider than
observed) is expected: intervals quantify over *all* reachable inputs,
not the ones a particular batch happened to contain.

Observation is cheap (one attribute read when no trace is installed;
an ``amin``/``amax`` pair when one is) and is only emitted on the
mixgemm backend with no fault injector -- the numpy backend does not
wrap accumulators and injected faults legitimately escape any sound
interval.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.analysis.diagnostics import Diagnostic, ERROR
from repro.core.locks import make_lock
from repro.runtime.observe import set_range_hook

from .analyzer import RangeAnalysis

#: Observation streams, in report order.
KINDS = ("act", "acc", "out")


@dataclass
class ObservedRange:
    """Running extrema of one (layer, kind) stream."""

    lo: float
    hi: float
    count: int = 1

    def update(self, lo: float, hi: float) -> None:
        if lo < self.lo:
            self.lo = lo
        if hi > self.hi:
            self.hi = hi
        self.count += 1


class RangeTrace:
    """Thread-safe recorder of per-layer observed value extrema.

    The per-array reduction happens outside the lock (it is pure and
    dominates the cost); only the tiny dictionary merge is serialized,
    so tracing a multi-worker serving run stays cheap and the recorded
    extrema are exact regardless of interleaving.
    """

    def __init__(self) -> None:
        self._lock = make_lock("range-trace")
        self._seen: dict[tuple[str, str], ObservedRange] = {}

    def __call__(self, label: str, kind: str, values: np.ndarray) -> None:
        if values.size == 0:
            return
        lo = float(np.amin(values))
        hi = float(np.amax(values))
        key = (label, kind)
        with self._lock:
            cur = self._seen.get(key)
            if cur is None:
                self._seen[key] = ObservedRange(lo, hi)
            else:
                cur.update(lo, hi)

    @property
    def observations(self) -> dict[tuple[str, str], ObservedRange]:
        with self._lock:
            return dict(self._seen)

    def clear(self) -> None:
        with self._lock:
            self._seen.clear()


@contextmanager
def observing_ranges(trace: Optional[RangeTrace] = None
                     ) -> Iterator[RangeTrace]:
    """Install ``trace`` as the process-wide range hook for the block.

    The previous hook is restored on exit, so nesting and test
    isolation behave; yields the trace for convenience::

        with observing_ranges() as trace:
            plan.run(x)
        report = crosscheck_ranges(trace, analysis)
    """
    if trace is None:
        trace = RangeTrace()
    previous = set_range_hook(trace)
    try:
        yield trace
    finally:
        set_range_hook(previous)


@dataclass
class RangeViolation:
    """One observed value outside its statically proven interval."""

    label: str
    kind: str
    observed_lo: float
    observed_hi: float
    static_lo: float
    static_hi: float

    def describe(self) -> str:
        return (f"{self.label}/{self.kind}: observed "
                f"[{self.observed_lo}, {self.observed_hi}] escapes the "
                f"proven [{self.static_lo}, {self.static_hi}]")


@dataclass
class RangeCrosscheck:
    """Outcome of replaying a static analysis against a trace."""

    checked: int = 0
    violations: list[RangeViolation] = field(default_factory=list)
    #: (label, kind) streams observed but absent from the analysis
    #: (e.g. a layer the interpreter bailed on) -- not failures, but
    #: listed so coverage gaps are visible.
    unmatched: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def diagnostics(self, path: str = "") -> list[Diagnostic]:
        return [Diagnostic(rule="RANGE-OBSERVED", severity=ERROR,
                           message=v.describe(),
                           hint="the static range analysis is unsound "
                                "for this build; do not trust its "
                                "overflow verdicts",
                           node=v.label, path=path)
                for v in self.violations]

    def render(self) -> str:
        lines = [f"range crosscheck: {self.checked} stream(s) checked, "
                 f"{len(self.violations)} escape(s), "
                 f"{len(self.unmatched)} unmatched"]
        lines.extend("  ESCAPE " + v.describe() for v in self.violations)
        lines.extend(f"  unmatched {label}/{kind}"
                     for label, kind in self.unmatched)
        return "\n".join(lines)


def _static_bounds(analysis: RangeAnalysis, label: str,
                   kind: str) -> Optional[tuple[float, float]]:
    """Scalar hull of the proven interval for one stream, or ``None``."""
    if kind == "out":
        r = analysis.node_ranges.get(label)
        if r is None:
            return None
        c = r.collapse()
        return float(c.lo), float(c.hi)
    rec = analysis.records.get(label)
    if rec is None:
        return None
    if kind == "act":
        c = rec.act.collapse()
        return float(c.lo), float(c.hi)
    return float(np.amin(rec.acc_lo)), float(np.amax(rec.acc_hi))


def crosscheck_ranges(trace: RangeTrace,
                      analysis: RangeAnalysis) -> RangeCrosscheck:
    """Check every observed stream against its proven interval.

    ``act`` and ``acc`` streams key off the GEMM records (quantized
    activation codes and post-wrap accumulators), ``out`` streams off
    the per-node output intervals.  Containment uses the scalar hull
    of per-channel bounds -- observations are whole-array extrema, so
    the hull is the tightest sound comparator.
    """
    result = RangeCrosscheck()
    for (label, kind), obs in sorted(trace.observations.items()):
        bounds = _static_bounds(analysis, label, kind)
        if bounds is None:
            result.unmatched.append((label, kind))
            continue
        result.checked += 1
        lo, hi = bounds
        if obs.lo < lo or obs.hi > hi:
            result.violations.append(RangeViolation(
                label=label, kind=kind, observed_lo=obs.lo,
                observed_hi=obs.hi, static_lo=lo, static_hi=hi))
    return result


__all__ = ["KINDS", "ObservedRange", "RangeCrosscheck", "RangeTrace",
           "RangeViolation", "crosscheck_ranges", "observing_ranges"]
