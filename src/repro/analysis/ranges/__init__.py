"""Abstract-interpretation range analysis for quantized graphs.

Propagates interval (and per-channel affine) domains through a model
graph with the exact semantics of the mixgemm runtime -- im2col-aware
quantized GEMM bounds, per-kc-block two's-complement wrap at
``accmem_bits``, fused-activation transfer functions -- and builds
three consumers on top:

* :func:`analyze_graph` / :class:`RangeAnalysis` -- the per-layer
  bounds table (derived ``accumulator_bits_required``, headroom vs the
  Eq. 5 worst case, wrap reachability) for diagnostics and DSE;
* :func:`check_ranges` / :func:`check_ranges_file` -- ``RANGE-*``
  diagnostics for ``repro check --ranges``;
* :func:`verify_plan` / :func:`verify_graph_plans` -- static
  plan-equivalence proof that compiled plans preserve ranges;
* :class:`RangeTrace` / :func:`crosscheck_ranges` -- the runtime
  sanitizer tying observed extrema back to the proofs.
"""

from .analyzer import (
    BlockBound,
    GemmRangeRecord,
    RangeAnalysis,
    analyze_graph,
)
from .domain import (
    AffineChannelMap,
    TensorRange,
    bits_required_interval,
    signed_contributions,
    silu_range,
    wrap_interval,
)
from .passes import (
    RANGES_RULES,
    check_ranges,
    check_ranges_file,
    node_noqa_rules,
    table_json,
)
from .plancheck import verify_graph_plans, verify_plan
from .sanitizer import (
    ObservedRange,
    RangeCrosscheck,
    RangeTrace,
    RangeViolation,
    crosscheck_ranges,
    observing_ranges,
)

__all__ = [
    "AffineChannelMap",
    "BlockBound",
    "GemmRangeRecord",
    "ObservedRange",
    "RANGES_RULES",
    "RangeAnalysis",
    "RangeCrosscheck",
    "RangeTrace",
    "RangeViolation",
    "TensorRange",
    "analyze_graph",
    "bits_required_interval",
    "check_ranges",
    "check_ranges_file",
    "crosscheck_ranges",
    "node_noqa_rules",
    "observing_ranges",
    "signed_contributions",
    "silu_range",
    "table_json",
    "verify_graph_plans",
    "verify_plan",
    "wrap_interval",
]
