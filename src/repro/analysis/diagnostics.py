"""Typed diagnostics shared by the contract checker and the AST linter.

A :class:`Diagnostic` is one finding: a stable rule id, a severity, a
location (graph node id for contract checks, file/line for lint checks),
a human message and an optional fix hint.  :class:`DiagnosticReport`
aggregates findings, fixes the severity ordering, and renders the text
and JSON forms; the SARIF form lives in :mod:`repro.analysis.sarif`.

Severity semantics follow the CI gate:

* ``error``   -- the model/code *will* misbehave (overflow, deadlock,
  runtime exception); ``repro check`` exits non-zero;
* ``warning`` -- legal but fragile (no headroom, suboptimal layout);
* ``info``    -- observations that cost nothing to know.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.errors import ReproError

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: All severities, strongest first (index = rank).
SEVERITIES = (ERROR, WARNING, INFO)


class AnalysisError(ReproError, ValueError):
    """Raised when the analysis layer itself is misused (bad severity,
    unreadable lint target) -- never for findings, which are data."""


def severity_rank(severity: str) -> int:
    """0 for ``error``, 1 for ``warning``, 2 for ``info``."""
    if severity not in SEVERITIES:
        raise AnalysisError(
            f"unknown severity {severity!r}; choose from {SEVERITIES}"
        )
    return SEVERITIES.index(severity)


@dataclass(frozen=True)
class Diagnostic:
    """One static finding.

    ``rule`` is the stable identifier (``ACC-OVERFLOW``, ``REP001``, ...)
    documented in ``docs/static_analysis.md``.  Exactly one location
    family is populated: graph findings carry ``node`` (and ``path`` of
    the model file when known); lint findings carry ``path``/``line``/
    ``col``.
    """

    rule: str
    severity: str
    message: str
    hint: str = ""
    node: str = ""
    path: str = ""
    line: int = 0
    col: int = 0

    def __post_init__(self) -> None:
        severity_rank(self.severity)  # validate eagerly

    def location(self) -> str:
        """Human-readable location prefix, empty when unknown."""
        if self.node:
            base = f"{self.path}:" if self.path else ""
            return f"{base}node '{self.node}'"
        if self.path:
            if self.line:
                return f"{self.path}:{self.line}:{self.col or 1}"
            return self.path
        return ""

    def render(self) -> str:
        loc = self.location()
        parts = [f"{loc}: " if loc else "",
                 f"{self.severity} [{self.rule}] {self.message}"]
        if self.hint:
            parts.append(f"  (hint: {self.hint})")
        return "".join(parts)

    def to_json(self) -> dict:
        payload = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        for key in ("hint", "node", "path"):
            value = getattr(self, key)
            if value:
                payload[key] = value
        if self.line:
            payload["line"] = self.line
            payload["col"] = self.col
        return payload


@dataclass
class DiagnosticReport:
    """An ordered collection of findings plus the CI exit-code policy."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics) -> None:
        for d in diagnostics:
            self.add(d)

    def by_severity(self, severity: str) -> list[Diagnostic]:
        severity_rank(severity)
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(WARNING)

    def counts(self) -> dict[str, int]:
        return {s: len(self.by_severity(s)) for s in SEVERITIES}

    def sorted(self) -> list[Diagnostic]:
        """Findings ordered by severity, then file, then line."""
        return sorted(
            self.diagnostics,
            key=lambda d: (severity_rank(d.severity), d.path, d.line,
                           d.node, d.rule),
        )

    def exit_code(self, fail_on: str = ERROR) -> int:
        """0 when clean, 1 when any finding at/above ``fail_on`` exists."""
        threshold = severity_rank(fail_on)
        return int(any(severity_rank(d.severity) <= threshold
                       for d in self.diagnostics))

    def summary(self) -> str:
        c = self.counts()
        if not self.diagnostics:
            return "clean: no diagnostics"
        return (f"{c[ERROR]} error(s), {c[WARNING]} warning(s), "
                f"{c[INFO]} info")

    def render_text(self) -> str:
        lines = [d.render() for d in self.sorted()]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "diagnostics": [d.to_json() for d in self.sorted()],
            "counts": self.counts(),
        }, indent=2)
