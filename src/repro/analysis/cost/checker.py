"""``repro check --cost``: cost-model diagnostics over a model graph.

Three rules, all grounded in the calibrated closed-form model:

* **COST-MODEL-DRIFT** (error) -- the calibration for a layer's config
  failed holdout verification: the engine's observed timing no longer
  matches the affine law the model derives from the ISA cost table.
  That means either the cost table or the engine changed without the
  other, and every cycle number the repository reports is suspect.
* **COST-BLOCKING-INEFFICIENT** (warning) -- the blocking a layer
  would deploy with is predicted at least
  :data:`INEFFICIENCY_THRESHOLD` slower than the best candidate in the
  standard blocking grid.  Legal, but leaves cycles on the table;
  the hint names the predicted-optimal blocking to tune toward.
* **COST-IMBALANCE** (warning) -- under a requested parallel worker
  count, the nr-aligned column partition (exactly
  :meth:`repro.core.parallel.ParallelMixGemm._partition`) gives some
  worker a predicted-cycle share far from the others (or leaves
  workers idle), so the parallel speedup cannot approach the core
  count.

Like the other graph checkers, predictions use the documented
``assumed_m`` row count: blocking ranking and slice skew are invariant
to M in the leading term, so the verdicts match any deployment batch.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from repro.analysis.contracts.overflow import node_config
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    ERROR,
    WARNING,
)
from repro.core.binseg import DEFAULT_MUL_WIDTH
from repro.core.config import (
    BlockingParams,
    DEFAULT_ACCMEM_BITS,
    blocking_candidates,
)
from repro.core.isa import KernelCosts

from .calibrate import get_tile_calibration
from .graph import DEFAULT_ASSUMED_M
from .model import predict_gemm

#: rule id -> one-line description, for SARIF rule metadata and docs.
COST_RULES: dict[str, str] = {
    "COST-MODEL-DRIFT": "cost-model calibration no longer reproduces "
                        "the event engine",
    "COST-BLOCKING-INEFFICIENT": "deployed blocking predicted well off "
                                 "the analytic optimum",
    "COST-IMBALANCE": "parallel worker slices have skewed predicted "
                      "cycles",
}

#: Relative slowdown vs. the best grid candidate that trips
#: COST-BLOCKING-INEFFICIENT.
INEFFICIENCY_THRESHOLD = 0.20

#: Relative spread (1 - fastest/slowest slice) that trips
#: COST-IMBALANCE.
IMBALANCE_THRESHOLD = 0.20

_QUANT_OPS = ("quant_conv2d", "quant_linear")


def _runtime_blocking() -> BlockingParams:
    """The blocking the inference engine actually deploys with."""
    from repro.runtime.engine import SIM_BLOCKING

    return SIM_BLOCKING


def _partition(n: int, cores: int, nr: int) -> list[tuple[int, int]]:
    """Replicates ``ParallelMixGemm._partition`` without an executor."""
    chunk = math.ceil(n / cores)
    chunk = max(nr, math.ceil(chunk / nr) * nr)
    slices = []
    start = 0
    while start < n:
        end = min(n, start + chunk)
        slices.append((start, end))
        start = end
    return slices


def check_cost(graph, *,
               accmem_bits: int = DEFAULT_ACCMEM_BITS,
               blocking: Optional[BlockingParams] = None,
               mul_width: int = DEFAULT_MUL_WIDTH,
               workers: int = 1,
               assumed_m: int = DEFAULT_ASSUMED_M,
               costs: Optional[KernelCosts] = None,
               path: str = "") -> DiagnosticReport:
    """Run the three COST-* checks over every quantized node."""
    if blocking is None:
        blocking = _runtime_blocking()
    if costs is None:
        costs = KernelCosts()
    report = DiagnosticReport()
    drift_seen: set[str] = set()
    candidates = blocking_candidates()
    for label, node in zip(graph.effective_ids(), graph):
        if node.op not in _QUANT_OPS:
            continue
        config = node_config(node, accmem_bits=accmem_bits,
                             blocking=blocking, mul_width=mul_width)
        k = node.gemm_k()
        n_out = node.out_channels()
        if config is None or not k or not n_out:
            continue  # structurally broken; the graph contract reports it
        groups = int(node.attrs.get("groups", 1)) or 1
        n = max(1, n_out // groups)

        calibration = get_tile_calibration(config, costs)
        if not calibration.exact and config.name not in drift_seen:
            drift_seen.add(config.name)
            report.add(Diagnostic(
                rule="COST-MODEL-DRIFT", severity=ERROR,
                message=(
                    f"{node.op} ({config.name}): calibration failed "
                    f"holdout verification -- the engine's observed tile "
                    f"timing no longer matches the affine law derived "
                    f"from the ISA cost table"
                ),
                hint="the cost table (core/isa.py) and the engine "
                     "disagree; update whichever changed, then clear "
                     "the cost cache to recalibrate",
                node=label, path=path,
            ))

        deployed = predict_gemm(config, costs, assumed_m, n, k).cycles
        best_cycles = deployed
        best_blocking = blocking
        for cand in candidates:
            cand_cfg = dataclasses.replace(config, blocking=cand)
            cycles = predict_gemm(cand_cfg, costs, assumed_m, n, k).cycles
            if cycles < best_cycles:
                best_cycles = cycles
                best_blocking = cand
        if deployed > best_cycles * (1 + INEFFICIENCY_THRESHOLD):
            pct = 100.0 * (deployed / best_cycles - 1.0)
            b = best_blocking
            report.add(Diagnostic(
                rule="COST-BLOCKING-INEFFICIENT", severity=WARNING,
                message=(
                    f"{node.op} ({config.name}, N={n}, K={k}): deployed "
                    f"blocking mc={blocking.mc} nc={blocking.nc} "
                    f"kc={blocking.kc} is predicted {pct:.0f}% slower "
                    f"than the analytic optimum "
                    f"({deployed} vs {best_cycles} cycles at "
                    f"M={assumed_m})"
                ),
                hint=(f"tune toward mc={b.mc} nc={b.nc} kc={b.kc} "
                      f"mr={b.mr} nr={b.nr} (repro tune confirms with "
                      f"the bit-exactness gate)"),
                node=label, path=path,
            ))

        if workers > 1:
            slices = _partition(n, workers, blocking.nr)
            slice_cycles = [
                predict_gemm(config, costs, assumed_m, end - start,
                             k).cycles
                for start, end in slices]
            idle = workers - len(slices)
            skew = (1.0 - min(slice_cycles) / max(slice_cycles)
                    if slice_cycles else 0.0)
            if idle > 0 or skew >= IMBALANCE_THRESHOLD:
                detail = (f"{idle} of {workers} workers receive no "
                          f"columns at all"
                          if idle > 0 else
                          f"fastest slice is predicted {100 * skew:.0f}% "
                          f"lighter than the slowest")
                report.add(Diagnostic(
                    rule="COST-IMBALANCE", severity=WARNING,
                    message=(
                        f"{node.op} ({config.name}, N={n}): the "
                        f"nr-aligned partition into {len(slices)} "
                        f"slice(s) for {workers} workers is skewed -- "
                        f"{detail}"
                    ),
                    hint="pick a worker count dividing N/nr evenly, or "
                         "widen the layer so the column partition "
                         "balances",
                    node=label, path=path,
                ))
    return report


def check_cost_file(path: str, *,
                    accmem_bits: int = DEFAULT_ACCMEM_BITS,
                    blocking: Optional[BlockingParams] = None,
                    mul_width: int = DEFAULT_MUL_WIDTH,
                    workers: int = 1,
                    assumed_m: int = DEFAULT_ASSUMED_M,
                    ) -> DiagnosticReport:
    """Load a serialized model and cost-check it.

    Deserialization failures become ``GRF-PARSE`` diagnostics instead
    of exceptions, so a CI lane can report on a corrupt artifact.
    """
    from repro.runtime.graph import GraphError, GraphModel

    try:
        graph = GraphModel.load(path)
    except (GraphError, OSError) as exc:
        report = DiagnosticReport()
        report.add(Diagnostic(
            rule="GRF-PARSE", severity="error",
            message=f"cannot load model: {exc}", path=path,
            hint="re-export the model with GraphModel.to_json()",
        ))
        return report
    return check_cost(graph, accmem_bits=accmem_bits, blocking=blocking,
                      mul_width=mul_width, workers=workers,
                      assumed_m=assumed_m, path=path)


__all__ = [
    "COST_RULES",
    "IMBALANCE_THRESHOLD",
    "INEFFICIENCY_THRESHOLD",
    "check_cost",
    "check_cost_file",
]
