"""Closed-form per-phase cycle model of the Mix-GEMM micro-kernel.

The event engine's micro-kernel timing is a pure function of
``(config, costs, n_groups)`` (data independence + translation
invariance, see :mod:`repro.core.fastpath`), and its structure makes the
per-tile CPU cycles **exactly affine** in the group count ``g``::

    cpu_cycles(g) = S * g + K        for every g >= 1

with the steady-state slope ``S = max(C, E)`` fully analytic:

* ``C`` -- CPU issue cycles per k-group: the per-group operand staging
  (``kgroup_overhead`` + one ``load_cost`` per u-vector load into the
  RF) plus, for each of the ``T = mr * nr`` register-tile cells, the
  inner-loop overhead and ``max(kua, kub)`` single-issue ``bs.ip``
  instructions (Algorithm 1 lines 5-9);
* ``E`` -- engine execution cycles per k-group: ``T`` groups through
  the DSU/multiplier pipeline at
  :func:`~repro.core.microengine.group_cycles` each (the Eq. 5 / Fig. 4
  group structure).

When the engine is the bottleneck (``E > C``) the micro-kernel is
drained at the engine rate and the surplus surfaces as buffer-full /
``bs.get`` stalls; when the CPU is the bottleneck the engine hides
entirely.  Either way the *total* is ``max`` -- only the pipeline
fill/drain intercept ``K`` and the split of the stall total between the
two PMU stall counters need calibration against instrumented engine
probes (:mod:`repro.analysis.cost.calibrate`).

Instruction and MAC counters are exact closed forms (no calibration):
per tile of ``g`` groups, ``g*T*max(kua,kub)`` bs.ip, ``T`` bs.get,
``g*T`` groups, ``g*T*group_elements`` issued MACs.

All quantities are CPU cycles of the modelled in-order core unless a
field name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.binseg import ceil_div
from repro.core.config import MixGemmConfig
from repro.core.isa import BS_GET_COST, BS_IP_COST, BS_SET_COST, KernelCosts
from repro.core.microengine import group_cycles
from repro.core.packing import aligned_kc


def tile_stage_cycles(config: MixGemmConfig, costs: KernelCosts) -> int:
    """Operand-staging cycles per k-group: pointer bumps + RF loads."""
    lay = config.layout
    blk = config.blocking
    return (costs.kgroup_overhead
            + costs.load_cost * (lay.kua * blk.mr + lay.kub * blk.nr))


def tile_ip_cycles(config: MixGemmConfig, costs: KernelCosts) -> int:
    """bs.ip issue-loop cycles per k-group (stall-free)."""
    lay = config.layout
    blk = config.blocking
    tile = blk.mr * blk.nr
    ku_iters = max(lay.kua, lay.kub)
    return tile * (costs.inner_loop_overhead + ku_iters * BS_IP_COST)


def tile_issue_cycles(config: MixGemmConfig, costs: KernelCosts) -> int:
    """``C``: total stall-free CPU issue cycles per k-group."""
    return tile_stage_cycles(config, costs) + tile_ip_cycles(config, costs)


def tile_engine_cycles(config: MixGemmConfig) -> int:
    """``E``: engine busy cycles per k-group (``T`` DSU group walks)."""
    blk = config.blocking
    return blk.mr * blk.nr * group_cycles(config)


def tile_slope(config: MixGemmConfig, costs: KernelCosts) -> int:
    """``S = max(C, E)``: steady-state CPU cycles per k-group."""
    return max(tile_issue_cycles(config, costs),
               tile_engine_cycles(config))


def tile_collect_cycles(config: MixGemmConfig) -> int:
    """bs.get issue cycles of one tile's collection loop (C excluded)."""
    blk = config.blocking
    return blk.mr * blk.nr * BS_GET_COST


#: Signature of a per-tile timing oracle: ``f(n_groups)`` returning an
#: object with the :class:`~repro.core.fastpath.MicroKernelTiming`
#: fields.  :mod:`.calibrate` provides the calibrated one;
#: ``repro.core.fastpath._tile_timing_engine`` is the reference.
TileFn = Callable[[int], object]


@dataclass(frozen=True)
class CostBreakdown:
    """Predicted whole-GEMM cycles, split by phase, plus counters.

    The phases partition the modelled CPU cycles exactly::

        cycles = set + stage + issue + collect + epilogue
                 + buffer_full_stall + get_stall

    ``engine_busy_cycles`` is informational (it overlaps the CPU
    phases); ``macs_issued`` counts issued MACs including zero-padded
    register-tile edges, matching the PMU, not the algebraic m*n*k.
    """

    m: int
    n: int
    k: int
    config: str
    cycles: int
    set_cycles: int
    stage_cycles: int
    issue_cycles: int
    collect_cycles: int
    epilogue_cycles: int
    buffer_full_stall_cycles: int
    get_stall_cycles: int
    engine_busy_cycles: int
    groups: int
    macs_issued: int
    ip_instructions: int
    get_instructions: int
    set_instructions: int

    @property
    def stall_cycles(self) -> int:
        """Total stall cycles (buffer-full + bs.get drain)."""
        return self.buffer_full_stall_cycles + self.get_stall_cycles

    @property
    def macs_per_cycle(self) -> float:
        """Issued-MAC throughput over the predicted cycles."""
        return self.macs_issued / self.cycles if self.cycles else 0.0

    def phase_identity_holds(self) -> bool:
        """Whether the phase fields partition ``cycles`` exactly."""
        return self.cycles == (
            self.set_cycles + self.stage_cycles + self.issue_cycles
            + self.collect_cycles + self.epilogue_cycles
            + self.buffer_full_stall_cycles + self.get_stall_cycles)

    def as_dict(self) -> dict:
        return {
            "m": self.m, "n": self.n, "k": self.k, "config": self.config,
            "cycles": self.cycles,
            "phases": {
                "set": self.set_cycles,
                "stage": self.stage_cycles,
                "issue": self.issue_cycles,
                "collect": self.collect_cycles,
                "epilogue": self.epilogue_cycles,
                "buffer_full_stall": self.buffer_full_stall_cycles,
                "get_stall": self.get_stall_cycles,
            },
            "engine_busy_cycles": self.engine_busy_cycles,
            "groups": self.groups,
            "macs_issued": self.macs_issued,
            "instructions": {
                "bs.set": self.set_instructions,
                "bs.ip": self.ip_instructions,
                "bs.get": self.get_instructions,
            },
            "macs_per_cycle": self.macs_per_cycle,
        }


def gemm_tile_counts(config: MixGemmConfig, m: int,
                     n: int) -> tuple[int, int]:
    """(row_tiles, col_tiles) of the blocked loop nest for one GEMM."""
    blk = config.blocking
    row_tiles = sum(ceil_div(min(blk.mc, m - ic), blk.mr)
                    for ic in range(0, m, blk.mc))
    col_tiles = sum(ceil_div(min(blk.nc, n - jc), blk.nr)
                    for jc in range(0, n, blk.nc))
    return row_tiles, col_tiles


def kblock_group_counts(config: MixGemmConfig, k: int) -> list[int]:
    """Per-kc-block tile group counts, in execution order.

    At most two distinct values appear (full blocks plus one tail), so
    downstream assembly is O(1) in K after this split.
    """
    lay = config.layout
    blk = config.blocking
    kc_eff = aligned_kc(blk.kc * lay.elems_a, lay.group_elements)
    return [ceil_div(min(kc_eff, k - pc), lay.group_elements)
            for pc in range(0, k, kc_eff)]


def predict_gemm(config: MixGemmConfig, costs: Optional[KernelCosts],
                 m: int, n: int, k: int, *,
                 tile_fn: Optional[TileFn] = None) -> CostBreakdown:
    """Predict one GEMM's cycles/counters without touching the engine.

    Mirrors the blocked assembly of
    :func:`~repro.core.fastpath.fastpath_timing` -- one ``bs.set``, then
    per kc-block ``tiles * tile(g)`` plus the ``m * n`` C-update
    epilogue -- but sources the per-tile timing from the calibrated
    closed form instead of an engine run.  ``tile_fn`` overrides the
    tile oracle (the differential tests inject the engine reference to
    bound the model error); by default the calibrated predictor from
    :mod:`.calibrate` is used, which probes the engine at most once per
    tile signature and cost-table digest, then never again.
    """
    if costs is None:
        costs = KernelCosts()
    if tile_fn is None:
        from .calibrate import calibrated_tile_fn

        tile_fn = calibrated_tile_fn(config, costs)
    row_tiles, col_tiles = gemm_tile_counts(config, m, n)
    tiles = row_tiles * col_tiles
    stage = tile_stage_cycles(config, costs)
    ip = tile_ip_cycles(config, costs)
    collect = tile_collect_cycles(config)
    kblocks = kblock_group_counts(config, k)

    cycles = BS_SET_COST
    stage_total = issue_total = collect_total = epilogue_total = 0
    stalls_full = stalls_get = busy = groups = macs = ips = gets = 0
    timing_by_g: dict[int, object] = {}
    for n_groups in kblocks:
        tile = timing_by_g.get(n_groups)
        if tile is None:
            tile = tile_fn(n_groups)
            timing_by_g[n_groups] = tile
        cycles += (tiles * tile.cpu_cycles
                   + m * n * costs.c_update_cost)
        stage_total += tiles * n_groups * stage
        issue_total += tiles * n_groups * ip
        collect_total += tiles * collect
        epilogue_total += m * n * costs.c_update_cost
        stalls_full += tiles * tile.buffer_full_stall_cycles
        stalls_get += tiles * tile.get_stall_cycles
        busy += tiles * tile.engine_busy_cycles
        groups += tiles * tile.groups
        macs += tiles * tile.macs
        ips += tiles * tile.ip_instructions
        gets += tiles * tile.get_instructions
    return CostBreakdown(
        m=m, n=n, k=k, config=config.name,
        cycles=cycles,
        set_cycles=BS_SET_COST,
        stage_cycles=stage_total,
        issue_cycles=issue_total,
        collect_cycles=collect_total,
        epilogue_cycles=epilogue_total,
        buffer_full_stall_cycles=stalls_full,
        get_stall_cycles=stalls_get,
        engine_busy_cycles=busy,
        groups=groups,
        macs_issued=macs,
        ip_instructions=ips,
        get_instructions=gets,
        set_instructions=1,
    )
