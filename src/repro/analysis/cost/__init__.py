"""Static cost analysis: closed-form calibrated cycle prediction.

The fourth static-analysis subsystem (alongside contracts, concurrency
and ranges): predicts cycles, instruction counts and stall breakdowns
for any (:class:`~repro.core.config.MixGemmConfig`, problem shape,
bitwidth pair) in closed form, **without executing the event engine**
on the prediction path.

Three cooperating modules:

* :mod:`.model` -- the analytic terms.  Every per-phase quantity
  (operand staging, bs.ip issue, MAC execution per the Eq. 5 group
  structure, collection, C-update epilogue) derives from the ISA cost
  table in :mod:`repro.core.isa` and the DSU group schedule; the
  steady-state cycles-per-k-group slope is ``max(issue, execute)``
  exactly.
* :mod:`.calibrate` -- the small set of calibrated overhead
  coefficients (pipeline fill/drain intercept, stall-counter split)
  fitted once per cost-table content digest against instrumented
  event-engine probes, persisted in an atomic content-keyed cache with
  the same discipline as :mod:`repro.tuning.cache`.
* :mod:`.checker` -- ``repro check --cost``: COST-MODEL-DRIFT,
  COST-BLOCKING-INEFFICIENT and COST-IMBALANCE diagnostics over a
  deployment graph, rendered through the shared text/JSON/SARIF
  machinery.

:func:`predict_gemm` / :func:`predict_graph_cycles` are the O(1) APIs
the autotuner pre-filter (``repro tune --analytic-prefilter``), the DSE
sweeps and the ``repro run --compiled`` per-layer stats consume.
"""

from __future__ import annotations

from .calibrate import (
    COST_CACHE_ENV,
    COST_SCHEMA_VERSION,
    CostCache,
    TileCalibration,
    calibrate_tile,
    cost_table_digest,
    exact_tile_timing,
    get_tile_calibration,
    tile_signature,
)
from .checker import COST_RULES, check_cost, check_cost_file
from .graph import LayerCost, PlanCost, predict_graph_cycles
from .model import (
    CostBreakdown,
    predict_gemm,
    tile_engine_cycles,
    tile_issue_cycles,
    tile_slope,
)

__all__ = [
    "COST_CACHE_ENV",
    "COST_RULES",
    "COST_SCHEMA_VERSION",
    "CostBreakdown",
    "CostCache",
    "LayerCost",
    "PlanCost",
    "TileCalibration",
    "calibrate_tile",
    "check_cost",
    "check_cost_file",
    "cost_table_digest",
    "exact_tile_timing",
    "get_tile_calibration",
    "predict_gemm",
    "predict_graph_cycles",
    "tile_engine_cycles",
    "tile_issue_cycles",
    "tile_signature",
    "tile_slope",
]
