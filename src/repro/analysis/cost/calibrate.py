"""Calibration of the closed-form tile model against engine probes.

The analytic model (:mod:`.model`) pins the steady-state slope of the
per-tile cycle law ``cpu_cycles(g) = S * g + K`` exactly -- ``S =
max(issue, execute)`` follows from the micro-kernel structure -- but
two small quantities are *observed*, not derived:

* the pipeline fill/drain intercept ``K`` (how the first group's
  staging overlaps the engine warming up), and
* the split of the stall total between the two PMU stall counters
  (buffer-full vs. ``bs.get``): the total is forced by the identity
  ``cpu = issue + collect + stalls``, but which counter absorbs a
  stall cycle depends on where in the pipeline the backpressure
  surfaces, and that split only becomes affine after a few groups.

Calibration therefore runs the instrumented engine
(:func:`repro.core.fastpath._tile_timing_engine`) on a handful of
small probe group counts, fits ``K`` and the stall split, then
*verifies* the fit on disjoint holdout group counts.  Only a
calibration whose holdouts reproduce the engine bit for bit is marked
``exact`` -- the flag that gates substituting the model for the engine
in the fast path's timing oracle.

Fitted calibrations persist in an atomic content-keyed cache
(:class:`CostCache`) with the same discipline as
:mod:`repro.tuning.cache`: entries are keyed by the digest of the ISA
cost table plus the tile signature, writes publish via ``os.replace``
(REP012), and corrupt / version-skewed / digest-mismatched entries are
reported once as a structured
:class:`~repro.robustness.errors.ReliabilityWarning` and ignored --
cache damage degrades to recalibration, never to a crash.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import warnings
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.config import MixGemmConfig
from repro.core.fastpath import MicroKernelTiming, _tile_timing_engine
from repro.core.isa import BS_GET_COST, ISA_COST_TABLE, KernelCosts
from repro.robustness.errors import ReliabilityWarning

from .model import (
    tile_engine_cycles,
    tile_issue_cycles,
    tile_slope,
)

#: Version of the on-disk calibration schema.  Bump on any layout
#: change; readers skip (with a warning) entries written by a
#: different version instead of guessing at their meaning.
COST_SCHEMA_VERSION = 1

#: Environment variable naming an alternative calibration-cache dir.
COST_CACHE_ENV = "REPRO_COST_CACHE"

#: Group counts the engine is probed at during calibration.  Small on
#: purpose: the probes dominate calibration cost, and the law is
#: affine from g=1, so a short prefix pins the fit.
PROBE_GROUPS = (1, 2, 3, 4, 5, 6)

#: Disjoint group counts the fitted model must reproduce exactly for
#: the calibration to earn ``exact=True``.  33 is far outside the
#: probe range so a stall-split transition past the probes is caught.
HOLDOUT_GROUPS = (8, 12, 33)


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_COST_CACHE`` or ``~/.cache/repro/cost``."""
    env = os.environ.get(COST_CACHE_ENV, "").strip()
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "cost"


def _digest(fields: dict) -> str:
    payload = json.dumps(fields, sort_keys=True,
                         separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()[:20]


def cost_table_digest(costs: Optional[KernelCosts] = None) -> str:
    """Content hash of everything the model's constants derive from.

    Covers the :class:`~repro.core.isa.KernelCosts` fields and the
    bs.* issue-cost table; any edit to either changes the digest, so a
    persisted calibration silently stops matching and recalibration
    happens on the next lookup.
    """
    if costs is None:
        costs = KernelCosts()
    return _digest({
        "kernel_costs": dataclasses.asdict(costs),
        "isa_cost_table": dict(ISA_COST_TABLE),
    })


def tile_signature(config: MixGemmConfig) -> dict:
    """Everything the per-tile timing depends on, as a plain dict.

    Deliberately excludes the cache blocking (mc/nc/kc), the AccMem
    width and the backend: the micro-kernel times one register tile of
    ``g`` full groups, so only the operand formats, the u-vector
    geometry, the engine datapath shape and the register blocking
    matter.  Configs differing only in excluded axes share one
    calibration.
    """
    lay = config.layout
    blk = config.blocking
    return {
        "bw_a": config.bw_a, "bw_b": config.bw_b,
        "signed_a": config.signed_a, "signed_b": config.signed_b,
        "word_bits": config.word_bits, "mul_width": config.mul_width,
        "source_buffer_depth": config.source_buffer_depth,
        "kua": lay.kua, "kub": lay.kub,
        "mr": blk.mr, "nr": blk.nr,
    }


@dataclass(frozen=True)
class TileCalibration:
    """One fitted per-tile timing law, self-describing and persistable.

    ``slope``/``intercept`` give ``cpu_cycles(g)``;
    ``buffer_slope``/``buffer_intercept`` give the buffer-full stall
    share in the extrapolated regime (probed group counts replay their
    observed values exactly); the ``bs.get`` stall share is forced by
    the cycle identity.  ``exact`` records whether every holdout probe
    reproduced the engine bit for bit -- only then may the fast path
    substitute :meth:`timing` for an engine run.
    """

    signature: tuple[tuple[str, object], ...]
    cost_digest: str
    slope: int
    intercept: int
    issue_cycles: int
    engine_cycles: int
    tile_cells: int
    ku_iters: int
    group_elements: int
    probes: tuple[tuple[int, int, int], ...]   # (g, cpu, buffer_full)
    buffer_slope: int
    buffer_intercept: int
    exact: bool

    def signature_dict(self) -> dict:
        return dict(self.signature)

    def timing(self, n_groups: int) -> MicroKernelTiming:
        """Predicted per-tile deltas for a ``n_groups``-group tile."""
        g = n_groups
        cpu = self.slope * g + self.intercept
        buffer_full = None
        for pg, pcpu, pbuf in self.probes:
            if pg == g:
                cpu, buffer_full = pcpu, pbuf
                break
        if buffer_full is None:
            buffer_full = max(0, self.buffer_slope * g
                              + self.buffer_intercept)
        collect = self.tile_cells * BS_GET_COST
        get_stall = max(0, cpu - self.issue_cycles * g - collect
                        - buffer_full)
        return MicroKernelTiming(
            cpu_cycles=cpu,
            buffer_full_stall_cycles=buffer_full,
            get_stall_cycles=get_stall,
            engine_busy_cycles=self.engine_cycles * g,
            groups=self.tile_cells * g,
            macs=self.tile_cells * g * self.group_elements,
            ip_instructions=self.tile_cells * g * self.ku_iters,
            get_instructions=self.tile_cells,
        )

    def as_dict(self) -> dict:
        return {
            "schema": COST_SCHEMA_VERSION,
            "cost_digest": self.cost_digest,
            "signature": self.signature_dict(),
            "slope": self.slope,
            "intercept": self.intercept,
            "issue_cycles": self.issue_cycles,
            "engine_cycles": self.engine_cycles,
            "tile_cells": self.tile_cells,
            "ku_iters": self.ku_iters,
            "group_elements": self.group_elements,
            "probes": [list(p) for p in self.probes],
            "buffer_slope": self.buffer_slope,
            "buffer_intercept": self.buffer_intercept,
            "exact": self.exact,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TileCalibration":
        schema = payload.get("schema")
        if schema != COST_SCHEMA_VERSION:
            raise ValueError(
                f"schema {schema!r} != supported {COST_SCHEMA_VERSION}")
        probes = tuple(
            (int(g), int(cpu), int(buf))
            for g, cpu, buf in payload["probes"])
        signature = tuple(sorted(payload["signature"].items()))
        return cls(
            signature=signature,
            cost_digest=str(payload["cost_digest"]),
            slope=int(payload["slope"]),
            intercept=int(payload["intercept"]),
            issue_cycles=int(payload["issue_cycles"]),
            engine_cycles=int(payload["engine_cycles"]),
            tile_cells=int(payload["tile_cells"]),
            ku_iters=int(payload["ku_iters"]),
            group_elements=int(payload["group_elements"]),
            probes=probes,
            buffer_slope=int(payload["buffer_slope"]),
            buffer_intercept=int(payload["buffer_intercept"]),
            exact=bool(payload["exact"]),
        )


def calibrate_tile(config: MixGemmConfig,
                   costs: Optional[KernelCosts] = None,
                   ) -> TileCalibration:
    """Probe the engine, fit the affine law, verify on holdouts.

    The slope is taken from the analytic model first; if the probes
    contradict it (which would mean the micro-kernel structure drifted
    from what :mod:`.model` encodes) the slope is re-fitted from the
    last two probes and the calibration cannot be ``exact`` -- that is
    precisely the situation COST-MODEL-DRIFT reports.
    """
    if costs is None:
        costs = KernelCosts()
    lay = config.layout
    blk = config.blocking
    probe_config = dataclasses.replace(config, backend="event")

    observed = {g: _tile_timing_engine(probe_config, costs, g)
                for g in PROBE_GROUPS}
    slope = tile_slope(config, costs)
    intercept = observed[PROBE_GROUPS[0]].cpu_cycles - slope
    affine = all(t.cpu_cycles == slope * g + intercept
                 for g, t in observed.items())
    if not affine:
        g_hi, g_lo = PROBE_GROUPS[-1], PROBE_GROUPS[-2]
        slope = ((observed[g_hi].cpu_cycles - observed[g_lo].cpu_cycles)
                 // (g_hi - g_lo))
        intercept = observed[g_hi].cpu_cycles - slope * g_hi

    g_hi, g_lo = PROBE_GROUPS[-1], PROBE_GROUPS[-2]
    buf_hi = observed[g_hi].buffer_full_stall_cycles
    buf_lo = observed[g_lo].buffer_full_stall_cycles
    buffer_slope = (buf_hi - buf_lo) // (g_hi - g_lo)
    buffer_intercept = buf_hi - buffer_slope * g_hi

    calibration = TileCalibration(
        signature=tuple(sorted(tile_signature(config).items())),
        cost_digest=cost_table_digest(costs),
        slope=slope,
        intercept=intercept,
        issue_cycles=tile_issue_cycles(config, costs),
        engine_cycles=tile_engine_cycles(config),
        tile_cells=blk.mr * blk.nr,
        ku_iters=max(lay.kua, lay.kub),
        group_elements=lay.group_elements,
        probes=tuple(
            (g, t.cpu_cycles, t.buffer_full_stall_cycles)
            for g, t in sorted(observed.items())),
        buffer_slope=buffer_slope,
        buffer_intercept=buffer_intercept,
        exact=False,
    )
    exact = affine and all(
        calibration.timing(g) == _tile_timing_engine(probe_config, costs, g)
        for g in HOLDOUT_GROUPS)
    return dataclasses.replace(calibration, exact=exact)


class CostCache:
    """Directory of :class:`TileCalibration` files, atomically published.

    One JSON file per (cost-table digest, tile signature); the file
    name embeds both so a cost-table edit strands the old entries (a
    lookup miss, then recalibration) without any invalidation pass.
    """

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = pathlib.Path(path) if path is not None \
            else default_cache_dir()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _file_name(cost_digest: str, signature: dict) -> str:
        return f"{cost_digest}-{_digest(signature)}.json"

    def _load_file(self, path: pathlib.Path) -> Optional[TileCalibration]:
        """Parse one entry; damaged/skewed files warn and read as
        absent (recalibration), never raise into the caller."""
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            return TileCalibration.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            warnings.warn(ReliabilityWarning(
                f"ignoring cost-cache entry {path.name}: "
                f"{type(exc).__name__}: {exc}"), stacklevel=3)
            return None

    def get(self, config: MixGemmConfig,
            costs: Optional[KernelCosts] = None,
            ) -> Optional[TileCalibration]:
        """Look up the calibration for ``(config, costs)``, or ``None``."""
        if costs is None:
            costs = KernelCosts()
        signature = tile_signature(config)
        cost_digest = cost_table_digest(costs)
        path = self.path / self._file_name(cost_digest, signature)
        entry = self._load_file(path) if path.is_file() else None
        if entry is not None and (
                entry.cost_digest != cost_digest
                or entry.signature_dict() != signature):
            warnings.warn(ReliabilityWarning(
                f"cost-cache entry {path.name} does not match its own "
                f"digest (cost-table drift, hash collision or "
                f"tampering); ignoring it and recalibrating"),
                stacklevel=2)
            entry = None
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, calibration: TileCalibration) -> pathlib.Path:
        """Persist ``calibration`` atomically; returns the final path."""
        self.path.mkdir(parents=True, exist_ok=True)
        final = self.path / self._file_name(
            calibration.cost_digest, calibration.signature_dict())
        tmp = self.path / f"{final.name}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(calibration.as_dict(), fh, indent=2,
                          sort_keys=True)
                fh.write("\n")
            os.replace(tmp, final)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return final

    def clear(self) -> int:
        """Delete every entry file; returns how many were removed."""
        removed = 0
        if self.path.is_dir():
            for path in sorted(self.path.glob("*.json")):
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    continue
        return removed


#: In-process memo over (cost digest, signature digest): one disk read
#: (or calibration) per distinct tile law per process.
_MEMO: dict[tuple[str, str], TileCalibration] = {}


def clear_calibration_memo() -> None:
    """Drop the in-process memo (tests re-pointing the cache dir)."""
    _MEMO.clear()


def get_tile_calibration(config: MixGemmConfig,
                         costs: Optional[KernelCosts] = None,
                         cache: Optional[CostCache] = None,
                         ) -> TileCalibration:
    """Memoized calibration lookup: memo, then disk, then calibrate.

    A miss at every level runs :func:`calibrate_tile` (the only code
    path that executes the event engine) and persists the result, so
    any later process with the same cost table predicts without ever
    touching the engine.
    """
    if costs is None:
        costs = KernelCosts()
    signature = tile_signature(config)
    memo_key = (cost_table_digest(costs), _digest(signature))
    calibration = _MEMO.get(memo_key)
    if calibration is not None:
        return calibration
    if cache is None:
        cache = CostCache()
    calibration = cache.get(config, costs)
    if calibration is None:
        calibration = calibrate_tile(config, costs)
        cache.put(calibration)
    _MEMO[memo_key] = calibration
    return calibration


def calibrated_tile_fn(config: MixGemmConfig,
                       costs: Optional[KernelCosts] = None,
                       cache: Optional[CostCache] = None,
                       ) -> Callable[[int], MicroKernelTiming]:
    """Bind ``(config, costs)`` into a per-tile timing oracle."""
    calibration = get_tile_calibration(config, costs, cache)
    return calibration.timing


def exact_tile_timing(config: MixGemmConfig,
                      costs: Optional[KernelCosts] = None,
                      n_groups: int = 1,
                      ) -> Optional[MicroKernelTiming]:
    """Predicted tile timing iff the calibration is *exact*, else None.

    The fast path's substitution hook: a non-exact calibration (model
    drift, exotic buffer depth) returns ``None`` so the caller falls
    back to the engine reference and cycle counts never change.
    """
    calibration = get_tile_calibration(config, costs)
    if not calibration.exact:
        return None
    return calibration.timing(n_groups)


__all__ = [
    "COST_CACHE_ENV",
    "COST_SCHEMA_VERSION",
    "HOLDOUT_GROUPS",
    "PROBE_GROUPS",
    "CostCache",
    "TileCalibration",
    "calibrate_tile",
    "calibrated_tile_fn",
    "clear_calibration_memo",
    "cost_table_digest",
    "default_cache_dir",
    "exact_tile_timing",
    "get_tile_calibration",
    "tile_signature",
]
