"""Whole-plan cycle prediction over compiled :class:`GraphPlan` objects.

:func:`predict_graph_cycles` walks a compiled plan's bound GEMM
executors (the same objects ``plan.run()`` dispatches to) and predicts
each quantized layer's cycles with the calibrated closed-form model --
no engine execution, no inference run.  The static IR does not know
the spatial extent of a layer's activations (M is batch- and
geometry-dependent), so callers either accept the documented
``assumed_m`` default -- blocking *ranking* is M-invariant in the
leading term, which is all the checker needs -- or pass per-layer row
counts (``repro run --compiled`` derives them from the measured
per-layer MAC counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.isa import KernelCosts

from .model import CostBreakdown, predict_gemm

#: Row count assumed when the caller cannot know M statically.  The
#: per-layer totals scale with the true M, but the blocking *ranking*
#: the checker consumes is unchanged.
DEFAULT_ASSUMED_M = 64


@dataclass(frozen=True)
class LayerCost:
    """Predicted cost of one quantized layer (all its group GEMMs).

    ``breakdown`` describes a single group's GEMM; grouped convolutions
    run ``gemms`` identical GEMMs per call, so the layer totals are the
    breakdown scaled by ``gemms``.
    """

    label: str
    op: str
    config: str
    mode: str               # "fast" | "event"
    gemms: int
    m: int
    n: int
    k: int
    breakdown: CostBreakdown

    @property
    def cycles(self) -> int:
        return self.gemms * self.breakdown.cycles

    @property
    def macs_issued(self) -> int:
        return self.gemms * self.breakdown.macs_issued

    def as_dict(self) -> dict:
        return {
            "label": self.label, "op": self.op, "config": self.config,
            "mode": self.mode, "gemms": self.gemms,
            "m": self.m, "n": self.n, "k": self.k,
            "cycles": self.cycles,
            "macs_issued": self.macs_issued,
            "per_gemm": self.breakdown.as_dict(),
        }


@dataclass(frozen=True)
class PlanCost:
    """Per-layer predictions plus the plan-level roll-up."""

    layers: tuple[LayerCost, ...]
    assumed_m: int

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs_issued(self) -> int:
        return sum(layer.macs_issued for layer in self.layers)

    def by_label(self) -> dict[str, LayerCost]:
        return {layer.label: layer for layer in self.layers}

    def as_dict(self) -> dict:
        return {
            "assumed_m": self.assumed_m,
            "total_cycles": self.total_cycles,
            "total_macs_issued": self.total_macs_issued,
            "layers": [layer.as_dict() for layer in self.layers],
        }


def iter_plan_gemms(plan) -> Iterator[tuple[str, str, list]]:
    """``(stats_label, op, bound_gemms)`` per quantized step of a plan."""
    for step in plan.steps:
        gemms = list(getattr(step, "gemms", []))
        single = getattr(step, "gemm", None)
        if single is not None:
            gemms.append(single)
        if not gemms:
            continue
        label = getattr(step, "stats_label", step.label)
        yield label, getattr(step, "op", ""), gemms


def predict_graph_cycles(plan, *,
                         assumed_m: int = DEFAULT_ASSUMED_M,
                         layer_rows: Optional[dict[str, int]] = None,
                         costs: Optional[KernelCosts] = None,
                         ) -> PlanCost:
    """Predict every quantized layer's cycles for a compiled plan.

    ``layer_rows`` maps a step's ``stats_label`` to its true GEMM row
    count (M); layers not listed fall back to ``assumed_m``.  The group
    GEMMs of one layer share (config, N, K), so each layer costs one
    O(1) closed-form evaluation regardless of its group count.
    """
    if costs is None:
        costs = KernelCosts()
    rows = layer_rows or {}
    layers = []
    for label, op, gemms in iter_plan_gemms(plan):
        gemm = gemms[0]
        m = int(rows.get(label, assumed_m))
        breakdown = predict_gemm(gemm.config, costs, m, gemm.n, gemm.k)
        layers.append(LayerCost(
            label=label, op=op, config=gemm.config.name,
            mode=gemm.mode, gemms=len(gemms),
            m=m, n=gemm.n, k=gemm.k, breakdown=breakdown,
        ))
    return PlanCost(layers=tuple(layers), assumed_m=assumed_m)


__all__ = [
    "DEFAULT_ASSUMED_M",
    "LayerCost",
    "PlanCost",
    "iter_plan_gemms",
    "predict_graph_cycles",
]
