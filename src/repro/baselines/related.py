"""Published results of related work (paper Table III + Section V).

Table III compares Mix-GEMM against ten systems using numbers "gathered
from published papers"; those numbers are data, not something a
reproduction can regenerate, so they live here as a registry.  Mix-GEMM's
own rows are *measured* by the benchmark harness and placed alongside.

Units follow the paper: GOPS for throughput, TOPS/W for efficiency, GHz,
nm, mm2.  ``None`` marks cells the paper leaves empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class BenchRange:
    """A low-high range as Table III reports (single values: lo == hi)."""

    lo: float
    hi: Optional[float] = None

    def __post_init__(self) -> None:
        if self.hi is None:
            object.__setattr__(self, "hi", self.lo)

    def __str__(self) -> str:
        if self.lo == self.hi:
            return f"{self.lo:g}"
        return f"{self.lo:g}-{self.hi:g}"


@dataclass(frozen=True)
class RelatedWork:
    """One Table III row."""

    key: str
    citation: str                 # reference tag in the paper
    data_sizes: str               # e.g. "8b/4b/2b" or "All 8b-2b"
    mixed_precision: bool
    soc: str
    freq_ghz: Optional[float]
    tech_nm: Optional[int]
    area_mm2: Optional[float]
    #: Per-benchmark (GOPS range, TOPS/W range); keys: "convolution",
    #: "alexnet", "vgg16", "resnet18", "mobilenet_v1", "regnet_x_400mf",
    #: "efficientnet_b0".
    perf: dict = field(default_factory=dict)
    eff: dict = field(default_factory=dict)
    notes: str = ""


RELATED_WORK: dict[str, RelatedWork] = {
    "baseline_fp32": RelatedWork(
        key="baseline_fp32", citation="Baseline", data_sizes="FP32",
        mixed_precision=False, soc="RV64", freq_ghz=1.2, tech_nm=None,
        area_mm2=None,
        perf={name: BenchRange(0.9) for name in (
            "alexnet", "vgg16", "resnet18", "mobilenet_v1",
            "regnet_x_400mf", "efficientnet_b0")},
    ),
    "gemmlowp": RelatedWork(
        key="gemmlowp", citation="[33]", data_sizes="8b",
        mixed_precision=False, soc="ARMv8 (NEON)", freq_ghz=1.2,
        tech_nm=None, area_mm2=None,
        perf={
            "alexnet": BenchRange(5.6), "vgg16": BenchRange(5.1),
            "resnet18": BenchRange(4.7), "mobilenet_v1": BenchRange(5.5),
            "regnet_x_400mf": BenchRange(4.8),
            "efficientnet_b0": BenchRange(5.8),
        },
        notes="Exploits the Neon SIMD extension",
    ),
    "dory": RelatedWork(
        key="dory", citation="[12]", data_sizes="8b",
        mixed_precision=False, soc="8xRV32 (GAP-8)", freq_ghz=0.26,
        tech_nm=None, area_mm2=None,
        perf={"mobilenet_v1": BenchRange(4.2)},
        eff={"mobilenet_v1": BenchRange(0.02)},
        notes="Energy efficiency refers to the entire SoC",
    ),
    "cmix_nn": RelatedWork(
        key="cmix_nn", citation="[13]", data_sizes="8b/4b/2b",
        mixed_precision=True, soc="ARMv7", freq_ghz=0.48,
        tech_nm=None, area_mm2=None,
        perf={"mobilenet_v1": BenchRange(0.3, 0.5)},
        eff={"mobilenet_v1": BenchRange(0.001, 0.002)},
    ),
    "pulp_nn": RelatedWork(
        key="pulp_nn", citation="[26]", data_sizes="8b/4b/2b",
        mixed_precision=False, soc="RV32 (PULP)", freq_ghz=0.17,
        tech_nm=None, area_mm2=None,
        perf={"convolution": BenchRange(0.2, 0.6)},
        notes="Casting overheads degrade sub-byte performance",
    ),
    "bruschi": RelatedWork(
        key="bruschi", citation="[11]", data_sizes="8b/4b/2b",
        mixed_precision=True, soc="8xRV32 (PULP)", freq_ghz=0.17,
        tech_nm=None, area_mm2=None,
        perf={"convolution": BenchRange(2.4, 6.1)},
    ),
    "ottavi": RelatedWork(
        key="ottavi", citation="[52]", data_sizes="8b/4b/2b",
        mixed_precision=True, soc="RV32", freq_ghz=0.25, tech_nm=22,
        area_mm2=0.002,
        perf={"convolution": BenchRange(1.1, 3.3)},
        eff={"convolution": BenchRange(0.2, 0.6)},
        notes="Area only includes the 4/2-bit MAC FU extension",
    ),
    "xpulpnn": RelatedWork(
        key="xpulpnn", citation="[27]", data_sizes="8b/4b/2b",
        mixed_precision=False, soc="8xRV32", freq_ghz=0.6, tech_nm=22,
        area_mm2=0.04,
        perf={"convolution": BenchRange(19.8, 47.9)},
        eff={"convolution": BenchRange(0.7, 1.1)},
    ),
    "bison_e": RelatedWork(
        key="bison_e", citation="[58]", data_sizes="8b/4b/2b",
        mixed_precision=False, soc="RV64", freq_ghz=0.6, tech_nm=22,
        area_mm2=0.000419,
        perf={
            "alexnet": BenchRange(0.4, 1.3),
            "vgg16": BenchRange(0.6, 2.5),
        },
        eff={
            "alexnet": BenchRange(0.01, 0.5),
            "vgg16": BenchRange(0.01, 0.03),
        },
        notes="Binary segmentation without buffers, DSU or AccMem",
    ),
    "eyeriss": RelatedWork(
        key="eyeriss", citation="[17]", data_sizes="16b",
        mixed_precision=False, soc="Decoupled", freq_ghz=0.25,
        tech_nm=65, area_mm2=12.25,
        perf={"alexnet": BenchRange(74.7), "vgg16": BenchRange(21.4)},
        eff={"alexnet": BenchRange(0.3), "vgg16": BenchRange(0.09)},
    ),
    "unpu": RelatedWork(
        key="unpu", citation="[41]", data_sizes="a16, w1-w16",
        mixed_precision=False, soc="Decoupled", freq_ghz=0.2,
        tech_nm=65, area_mm2=16.0,
        perf={"alexnet": BenchRange(461.1), "vgg16": BenchRange(567.3)},
        eff={"alexnet": BenchRange(1.6), "vgg16": BenchRange(1.9)},
    ),
}

#: Mix-GEMM's own Table III row, as published (used to validate the
#: measured rows the harness produces).
PAPER_MIXGEMM_ROW = RelatedWork(
    key="mix_gemm_paper", citation="This work", data_sizes="All 8b-2b",
    mixed_precision=True, soc="RV64", freq_ghz=1.2, tech_nm=22,
    area_mm2=0.0136,
    perf={
        "convolution": BenchRange(4.2, 7.9),
        "alexnet": BenchRange(5.2, 13.6),
        "vgg16": BenchRange(5.3, 13.1),
        "resnet18": BenchRange(5.1, 12.4),
        "mobilenet_v1": BenchRange(4.8, 9.5),
        "regnet_x_400mf": BenchRange(5.1, 9.9),
        "efficientnet_b0": BenchRange(5.1, 13.1),
    },
    eff={
        "convolution": BenchRange(0.4, 0.8),
        "alexnet": BenchRange(0.5, 1.3),
        "vgg16": BenchRange(0.5, 1.3),
        "resnet18": BenchRange(0.5, 1.3),
        "mobilenet_v1": BenchRange(0.5, 1.2),
        "regnet_x_400mf": BenchRange(0.5, 0.9),
        "efficientnet_b0": BenchRange(0.5, 1.3),
    },
)


def get_related(key: str) -> RelatedWork:
    """Look up one related-work row by key."""
    try:
        return RELATED_WORK[key]
    except KeyError:
        raise KeyError(
            f"unknown related work {key!r}; choose from "
            f"{sorted(RELATED_WORK)}"
        ) from None
