"""Baseline GEMM timing models: BLIS DGEMM, int8 BLIS, OpenBLAS, GEMMLowp.

Four comparators appear in the paper's evaluation:

* **BLIS DGEMM** on the same RV64 SoC -- the Figure 6 denominator;
* **BLIS int8** on the same SoC -- shows that quantization without ISA
  support "only reaches an average 2.5x improvement";
* **OpenBLAS FP32** on the SiFive U740 (dual-issue, 1.2 GHz) -- the
  Figure 7 / Table III baseline (~0.9 GOPS on every CNN);
* **GEMMLowp int8** on the Arm Cortex-A53 with NEON -- the optimized
  software library comparison (~4.7-5.8 GOPS, 8-bit only).

All share the blocked-GEMM structure, so one parametric model covers them:
a register-tiled micro-kernel on an in-order core (optionally dual-issue,
optionally SIMD) plus the analytic memory-traffic model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.memory import gemm_traffic
from repro.sim.params import (
    DEFAULT_MEMORY_COSTS,
    DEFAULT_SCALAR_COSTS,
    FP_ACC_BYTES,
    PAPER_SOC,
    MemoryCosts,
    ScalarCosts,
    SocParams,
)
from repro.sim.perf import PerfResult, TrafficBreakdown, combine


@dataclass(frozen=True)
class BaselineKernel:
    """One baseline's micro-kernel character."""

    name: str
    element_bytes: float         # operand storage size
    acc_bytes: int               # accumulator size
    load_cost: float             # per operand load (issue + exposed latency)
    mac_cost: float              # per scalar MAC (or per SIMD op)
    kstep_overhead: float
    c_update: float
    issue_width: float = 1.0     # >1 for dual-issue hosts
    simd_lanes: int = 1          # elements per load/MAC instruction
    out_bytes: float | None = None  # final output element size (DRAM)
    mr: int = 4
    nr: int = 4
    mc: int = 256
    nc: int = 256
    kc: int = 256


def blis_dgemm_kernel(costs: ScalarCosts = DEFAULT_SCALAR_COSTS
                      ) -> BaselineKernel:
    """The 64-bit BLIS DGEMM the paper uses as its Figure 6 baseline."""
    return BaselineKernel(
        name="blis-dgemm-fp64",
        element_bytes=8.0,
        acc_bytes=FP_ACC_BYTES,
        load_cost=costs.fp_load,
        mac_cost=costs.fp_mac,
        kstep_overhead=costs.fp_kstep_overhead,
        c_update=costs.c_update,
    )


def blis_int8_kernel(costs: ScalarCosts = DEFAULT_SCALAR_COSTS
                     ) -> BaselineKernel:
    """BLIS re-typed to int8 on the scalar ISA (no sub-word SIMD).

    Operands shrink 8x in memory, but each element still needs its own
    load/mul/add on a scalar RV64 core -- the paper's point about why
    quantization alone "is not sufficient to guarantee high benefits".
    """
    return BaselineKernel(
        name="blis-int8",
        element_bytes=1.0,
        acc_bytes=4,
        out_bytes=1.0,
        load_cost=costs.int_load,
        mac_cost=costs.int_mac,
        kstep_overhead=costs.int_kstep_overhead,
        c_update=costs.c_update,
    )


def openblas_fp32_u740_kernel() -> BaselineKernel:
    """OpenBLAS SGEMM on the SiFive U740 (dual-issue in-order, 1.2 GHz).

    Calibrated to the ~0.9 GOPS the paper measures on every CNN
    (Table III baseline row).
    """
    return BaselineKernel(
        name="openblas-fp32-u740",
        element_bytes=4.0,
        acc_bytes=4,
        load_cost=3.0,
        mac_cost=2.0,
        kstep_overhead=3.0,
        c_update=3.0,
        issue_width=1.35,  # dual-issue, imperfect pairing
    )


def gemmlowp_a53_kernel() -> BaselineKernel:
    """GEMMLowp int8 on the Cortex-A53 with NEON (Table III row [33]).

    NEON processes 8-16 byte lanes per instruction; the effective rate is
    calibrated to the published 4.7-5.8 GOPS range at 1.2 GHz.
    """
    return BaselineKernel(
        name="gemmlowp-int8-a53",
        element_bytes=1.0,
        acc_bytes=4,
        out_bytes=1.0,
        load_cost=1.0,
        mac_cost=4.4,      # widening mul + pairwise adds on 64-bit NEON
        kstep_overhead=4.0,
        c_update=3.0,
        issue_width=1.35,
        simd_lanes=8,
        mr=8, nr=8,
    )


class ScalarGemmModel:
    """Cycle model for register-tiled scalar/SIMD GEMM baselines."""

    def __init__(
        self,
        kernel: BaselineKernel,
        soc: SocParams = PAPER_SOC,
        *,
        mem_costs: MemoryCosts = DEFAULT_MEMORY_COSTS,
    ) -> None:
        self.kernel = kernel
        self.soc = soc
        self.mem_costs = mem_costs

    def gemm(self, m: int, n: int, k: int) -> PerfResult:
        ker = self.kernel
        # One k-step covers `simd_lanes` k elements: each register-tile
        # accumulator takes one (SIMD) MAC instruction per step, and each
        # operand row/column one (vector) load.  Edge tiles run smaller
        # loop bounds, so issue work tracks the valid output count (the
        # same convention as the Mix-GEMM model, for fairness).
        k_steps = math.ceil(k / ker.simd_lanes)
        slots = ker.mr * ker.nr
        per_step_per_pair = (
            (ker.mr + ker.nr) * ker.load_cost / slots
            + ker.mac_cost
            + ker.kstep_overhead / slots
        ) / ker.issue_width
        outputs = m * n
        compute = outputs * k_steps * per_step_per_pair
        k_blocks = math.ceil(k / ker.kc)
        collection = outputs * k_blocks * ker.c_update / ker.issue_width

        traffic = gemm_traffic(
            m, n, k,
            a_bytes_per_element=ker.element_bytes,
            b_bytes_per_element=ker.element_bytes,
            acc_bytes=ker.acc_bytes,
            mc=ker.mc, nc=ker.nc, kc=ker.kc, mr=ker.mr, nr=ker.nr,
            soc=self.soc, costs=self.mem_costs,
            out_bytes_per_element=ker.out_bytes,
        )
        return PerfResult(
            m=m, n=n, k=k, macs=m * n * k,
            engine_cycles=0.0,
            cpu_cycles=compute,
            collection_cycles=collection,
            memory_stall_cycles=traffic.stall_cycles(
                self.mem_costs, self.soc.line_bytes
            ),
            traffic=traffic,
            freq_ghz=self.soc.freq_ghz,
        )

    def conv_layer(self, layer) -> PerfResult:
        m, k, n = layer.gemm_dims
        per_group = self.gemm(m, n, k)
        if layer.groups == 1:
            return per_group
        return per_group.scaled(layer.groups)

    def network(self, inventory, *, conv_only: bool = True) -> PerfResult:
        layers = inventory.conv_layers if conv_only else inventory.layers
        return combine([self.conv_layer(l) for l in layers],
                       self.soc.freq_ghz)
