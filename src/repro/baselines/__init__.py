"""Baseline comparators: timing models + published-number registry."""

from .related import (
    RELATED_WORK,
    RelatedWork,
    get_related,
)
from .scalar import (
    BaselineKernel,
    ScalarGemmModel,
    blis_dgemm_kernel,
    blis_int8_kernel,
    gemmlowp_a53_kernel,
    openblas_fp32_u740_kernel,
)

__all__ = [
    "RELATED_WORK",
    "RelatedWork",
    "get_related",
    "BaselineKernel",
    "ScalarGemmModel",
    "blis_dgemm_kernel",
    "blis_int8_kernel",
    "gemmlowp_a53_kernel",
    "openblas_fp32_u740_kernel",
]
