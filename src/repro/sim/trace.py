"""Trace-driven cache simulation of the blocked GEMM.

The analytic traffic model (:mod:`repro.sim.memory`) uses closed-form
pass counts; this module validates it by *actually walking* Algorithm 1's
loop nest, emitting every u-vector load and C update as a byte address,
and driving the set-associative :class:`~repro.sim.cache.CacheHierarchy`.
The tests check that the two agree on magnitude and on every qualitative
ordering (narrower data -> less traffic, smaller caches -> more misses).

Address map (one flat physical space):

* packed A at ``A_BASE``, row-major u-vector runs;
* packed B at ``B_BASE``, column-major runs;
* C accumulators at ``C_BASE``, row-major int32.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import MixGemmConfig
from repro.core.packing import aligned_kc

from .cache import CacheHierarchy

A_BASE = 0x0000_0000
B_BASE = 0x1000_0000
C_BASE = 0x2000_0000

WORD_BYTES = 8
ACC_BYTES = 4


@dataclass
class TraceStats:
    """Outcome of one trace-driven run."""

    loads: int
    l1_miss_lines: int
    l2_miss_lines: int
    l2_bytes: float
    dram_bytes: float


def _a_addr(run: int, word: int, words_per_run: int) -> int:
    return A_BASE + (run * words_per_run + word) * WORD_BYTES

def _b_addr(run: int, word: int, words_per_run: int) -> int:
    return B_BASE + (run * words_per_run + word) * WORD_BYTES

def _c_addr(row: int, col: int, n: int) -> int:
    return C_BASE + (row * n + col) * ACC_BYTES


class GemmMemorySystem:
    """Cache-backed memory system for the *functional* GEMM simulator.

    Plugs into :class:`repro.core.gemm.MixGemm` (its ``memory`` hook):
    every u-vector load and C update is charged the latency the
    set-associative hierarchy actually produces, instead of the constant
    issue costs of :class:`~repro.core.gemm.KernelCosts`.  This closes
    the loop between the bit-exact simulator and the cache model: one run
    yields exact values, exact instruction counts, and cache-accurate
    stall cycles.
    """

    def __init__(self, m: int, n: int, k: int, config: MixGemmConfig,
                 hierarchy: CacheHierarchy | None = None) -> None:
        self.hierarchy = hierarchy or CacheHierarchy()
        lay = config.layout
        groups = math.ceil(k / lay.group_elements)
        self._a_words_per_run = groups * lay.kua
        self._b_words_per_run = groups * lay.kub
        self._n = n

    def load_a(self, run: int, word: int) -> int:
        """Latency of loading one A u-vector."""
        return self.hierarchy.load(
            _a_addr(run, word, self._a_words_per_run), WORD_BYTES
        )

    def load_b(self, run: int, word: int) -> int:
        """Latency of loading one B u-vector."""
        return self.hierarchy.load(
            _b_addr(run, word, self._b_words_per_run), WORD_BYTES
        )

    def update_c(self, row: int, col: int) -> int:
        """Latency of the C element read-modify-write (plus the add)."""
        addr = _c_addr(row, col, self._n)
        return (self.hierarchy.load(addr, ACC_BYTES)
                + self.hierarchy.store(addr, ACC_BYTES) + 1)


def trace_gemm(
    m: int,
    n: int,
    k: int,
    config: MixGemmConfig,
    hierarchy: CacheHierarchy | None = None,
) -> TraceStats:
    """Walk Algorithm 1's memory behaviour through the cache simulator.

    Emits, per k-group of each u-kernel, the ``kua*mr`` A and ``kub*nr``
    B u-vector loads (the RF holds them across the inner loops), and per
    k-block the C read-modify-write of the u-panel.
    """
    hierarchy = hierarchy or CacheHierarchy()
    lay = config.layout
    blk = config.blocking
    ge = lay.group_elements
    groups_per_run = math.ceil(k / ge)
    a_words_per_run = groups_per_run * lay.kua
    b_words_per_run = groups_per_run * lay.kub
    kc_elems = aligned_kc(blk.kc * lay.elems_a, ge)
    groups_per_block = kc_elems // ge

    loads = 0
    for jc in range(0, n, blk.nc):
        nc = min(blk.nc, n - jc)
        for pc_group in range(0, groups_per_run, groups_per_block):
            block_groups = min(groups_per_block,
                               groups_per_run - pc_group)
            for ic in range(0, m, blk.mc):
                mc = min(blk.mc, m - ic)
                for jr in range(jc, jc + nc, blk.nr):
                    for ir in range(ic, ic + mc, blk.mr):
                        # u-kernel over this k block.
                        for g in range(pc_group, pc_group + block_groups):
                            for j in range(blk.mr):
                                run = min(ir + j, m - 1)
                                for w in range(lay.kua):
                                    hierarchy.load(
                                        _a_addr(run, g * lay.kua + w,
                                                a_words_per_run),
                                        WORD_BYTES,
                                    )
                                    loads += 1
                            for i in range(blk.nr):
                                run = min(jr + i, n - 1)
                                for w in range(lay.kub):
                                    hierarchy.load(
                                        _b_addr(run, g * lay.kub + w,
                                                b_words_per_run),
                                        WORD_BYTES,
                                    )
                                    loads += 1
                        # Collection: C u-panel read-modify-write.
                        for i in range(blk.nr):
                            for j in range(blk.mr):
                                row, col = ir + j, jr + i
                                if row < m and col < n:
                                    addr = _c_addr(row, col, n)
                                    hierarchy.load(addr, ACC_BYTES)
                                    hierarchy.store(addr, ACC_BYTES)
                                    loads += 1
    line = hierarchy.l1.line_bytes
    return TraceStats(
        loads=loads,
        l1_miss_lines=hierarchy.l1.stats.misses,
        l2_miss_lines=hierarchy.l2.stats.misses,
        l2_bytes=hierarchy.l1.stats.misses * line,
        dram_bytes=hierarchy.l2.stats.misses * line,
    )
