"""Scalability models: multi-core SoCs and wider-SIMD u-engines.

Section III-B sketches two scaling axes for Mix-GEMM; both are modelled
here on top of the single-core performance model:

* **multi-core** -- one u-engine per core, BLIS jr-loop parallelism,
  shared L2 (contention grows with core count), a barrier per GEMM;
* **wider SIMD** -- 128/256-bit u-vector loads with the DSU/DCU selecting
  a proportionally wider cluster spread over several multipliers: the
  engine drains ``lanes`` groups' worth of elements per schedule pass,
  and area grows with the widened Source Buffers and datapath.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import MixGemmConfig

from .area import UEngineArea
from .params import (
    DEFAULT_MEMORY_COSTS,
    PAPER_SOC,
    MemoryCosts,
    SocParams,
)
from .perf import MixGemmPerfModel, PerfResult


@dataclass(frozen=True)
class MultiCoreResult:
    """Whole-GEMM outcome on a multi-core SoC."""

    cores: int
    cycles: float
    macs: int
    single_core_cycles: float

    @property
    def speedup(self) -> float:
        return self.single_core_cycles / self.cycles

    @property
    def efficiency(self) -> float:
        return self.speedup / self.cores

    def gops(self, freq_ghz: float = 1.2) -> float:
        return 2.0 * self.macs / self.cycles * freq_ghz


class MultiCorePerfModel:
    """N-dimension-parallel Mix-GEMM timing over several cores.

    Each core runs an independent u-engine on a column slice; the shared
    L2/DRAM path serializes partially, modelled by inflating per-core
    memory stalls with a contention factor ``1 + alpha * (cores - 1)``.
    """

    def __init__(
        self,
        cores: int,
        soc: SocParams = PAPER_SOC,
        *,
        mem_contention: float = 0.12,
        barrier_cycles: float = 200.0,
        mem_costs: MemoryCosts = DEFAULT_MEMORY_COSTS,
    ) -> None:
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.cores = cores
        self.mem_contention = mem_contention
        self.barrier_cycles = barrier_cycles
        self.single = MixGemmPerfModel(soc, mem_costs=mem_costs)

    def gemm(self, m: int, n: int, k: int,
             config: MixGemmConfig) -> MultiCoreResult:
        single = self.single.gemm(m, n, k, config)
        nr = config.blocking.nr
        slice_n = max(nr, math.ceil(n / self.cores / nr) * nr)
        per_core = self.single.gemm(m, min(n, slice_n), k, config)
        contention = 1.0 + self.mem_contention * (self.cores - 1)
        cycles = (
            per_core.compute_cycles
            + per_core.memory_stall_cycles * contention
            + self.barrier_cycles
        )
        return MultiCoreResult(
            cores=self.cores,
            cycles=cycles,
            macs=m * n * k,
            single_core_cycles=single.total_cycles,
        )


# ---------------------------------------------------------------------------
# Wider SIMD u-engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WideSimdDesign:
    """A widened u-engine: datapath lanes and the area it costs."""

    lanes: int
    area_um2: float
    area_overhead_vs_baseline: float


def wide_simd_area(lanes: int) -> WideSimdDesign:
    """Area of a ``lanes``-wide u-engine.

    Source Buffers widen linearly with the u-vector width; DSU/DCU/DFU/
    adder replicate per lane; the Control Unit is shared.
    """
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    base = UEngineArea()
    area = 0.0
    for name in base.components:
        if name == "control_unit":
            area += base.component_area(name)
        else:
            area += base.component_area(name) * lanes
    return WideSimdDesign(
        lanes=lanes,
        area_um2=area,
        area_overhead_vs_baseline=area / base.total_um2,
    )


class WideSimdPerfModel(MixGemmPerfModel):
    """Performance model for a ``lanes``-wide u-engine.

    The engine drains ``lanes`` accumulation groups concurrently (one per
    multiplier), and the wider loads move ``lanes`` u-vectors per
    instruction, shrinking the CPU issue stream proportionally.
    """

    def __init__(self, lanes: int, soc: SocParams = PAPER_SOC,
                 **kwargs) -> None:
        super().__init__(soc, **kwargs)
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.lanes = lanes

    def gemm(self, m: int, n: int, k: int,
             config: MixGemmConfig) -> PerfResult:
        base = super().gemm(m, n, k, config)
        if self.lanes == 1:
            return base
        return PerfResult(
            m=m, n=n, k=k, macs=base.macs,
            engine_cycles=base.engine_cycles / self.lanes,
            cpu_cycles=base.cpu_cycles / self.lanes,
            collection_cycles=base.collection_cycles,
            memory_stall_cycles=base.memory_stall_cycles,
            traffic=base.traffic,
            freq_ghz=base.freq_ghz,
        )


# ---------------------------------------------------------------------------
# Simulator-backed multi-core measurement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MeasuredScalingPoint:
    """One core count, measured on the bit-exact simulator."""

    cores: int
    cycles: int
    macs: int
    single_core_cycles: int

    @property
    def speedup(self) -> float:
        return self.single_core_cycles / self.cycles

    @property
    def efficiency(self) -> float:
        return self.speedup / self.cores


def measured_multicore_scaling(
    core_counts: tuple[int, ...] = (1, 2, 4),
    *,
    config: MixGemmConfig | None = None,
    gemm_size: tuple[int, int, int] = (32, 64, 384),
    seed: int = 0,
    backend: str = "auto",
) -> list[MeasuredScalingPoint]:
    """Measure multi-core scaling on the simulator, not the closed form.

    Complements :class:`MultiCorePerfModel`: instead of an analytic
    memory-contention estimate, this runs the actual
    :class:`~repro.core.parallel.ParallelMixGemm` (one u-engine per
    core, N-sliced, barrier at the end) on a random GEMM and reports the
    measured per-core-maximum cycle counts.  Defaults to ``auto``
    backend dispatch -- the fast path makes whole sweeps practical --
    with cycle counts identical to an all-event run by construction.
    """
    import numpy as np

    from repro.core.parallel import ParallelMixGemm

    if config is None:
        from repro.core.config import BlockingParams

        config = MixGemmConfig(blocking=BlockingParams(mc=16, nc=16, kc=64))
    rng = np.random.default_rng(seed)
    m, n, k = gemm_size
    a = rng.integers(-(1 << (config.bw_a - 1)), 1 << (config.bw_a - 1),
                     size=(m, k))
    b = rng.integers(-(1 << (config.bw_b - 1)), 1 << (config.bw_b - 1),
                     size=(k, n))
    points: list[MeasuredScalingPoint] = []
    baseline: int | None = None
    for cores in core_counts:
        result = ParallelMixGemm(config, cores=cores,
                                 backend=backend).gemm(a, b)
        if baseline is None:
            single = (result.cycles if cores == 1 else
                      ParallelMixGemm(config, cores=1,
                                      backend=backend).gemm(a, b).cycles)
            baseline = single
        points.append(MeasuredScalingPoint(
            cores=cores, cycles=result.cycles, macs=result.macs,
            single_core_cycles=baseline,
        ))
    return points
