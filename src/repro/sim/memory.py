"""Analytic memory-traffic model for blocked GEMM.

Closed-form byte counts for the BLIS loop structure of Algorithm 1 (and of
the scalar baselines, which share it).  The derivation is the standard
blocked-GEMM analysis:

* **B** is packed once per (jc, pc) panel and stays L2-resident across the
  ``ic`` loop -> read from DRAM once in total;
* **A** is re-read from DRAM for every ``jc`` iteration -> ``ceil(n/nc)``
  full passes;
* the **A u-panel** is streamed L2->L1 for every ``jr`` tile ->
  ``ceil(n/nr)`` passes over A;
* the **B u-panel** is loaded L2->L1 once per (jr, ic) -> ``ceil(m/mc)``
  passes over B;
* **C** is read+written once per k-block; that traffic hits L2 when an
  ``mc x nc`` accumulator block fits there, DRAM otherwise.

Working-set gating: when a whole operand fits a level (with the
utilization margin of :class:`~repro.sim.params.MemoryCosts`), repeat
passes hit that level instead of the one below -- this is what makes the
Figure 6 curves flat for cache-resident sizes and what drives the
cache-shrinking study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import MemoryCosts, SocParams


@dataclass(frozen=True)
class TrafficBreakdown:
    """Bytes moved per level for one GEMM call."""

    l2_bytes: float
    dram_bytes: float

    def stall_cycles(self, costs: MemoryCosts,
                     line_bytes: int = 64) -> float:
        return (
            self.l2_bytes / line_bytes * costs.l2_line_stall
            + self.dram_bytes / line_bytes * costs.dram_line_stall
        )


def gemm_traffic(
    m: int,
    n: int,
    k: int,
    *,
    a_bytes_per_element: float,
    b_bytes_per_element: float,
    acc_bytes: int,
    mc: int,
    nc: int,
    kc: int,
    mr: int,
    nr: int,
    soc: SocParams,
    costs: MemoryCosts,
    out_bytes_per_element: float | None = None,
) -> TrafficBreakdown:
    """Bytes moved from L2 and DRAM for one blocked GEMM.

    ``out_bytes_per_element`` is the size of the *final* output written to
    DRAM -- 1 byte for the quantized inference pipeline (results are
    requantized before leaving the fused layer), ``acc_bytes`` otherwise.
    """
    a_total = m * k * a_bytes_per_element
    b_total = k * n * b_bytes_per_element
    c_total = m * n * acc_bytes
    l1_cap = soc.l1_bytes * costs.cache_utilization
    l2_cap = soc.l2_bytes * costs.cache_utilization

    n_passes_a_dram = math.ceil(n / nc)
    k_blocks = math.ceil(k / kc)

    # --- DRAM traffic -------------------------------------------------------
    if a_total + b_total <= l2_cap:
        # Everything stays L2-resident after the first read.
        dram = a_total + b_total
    else:
        dram = a_total * n_passes_a_dram + b_total
    # C: accumulators stream per k-block; when an mc x nc block fits L2 the
    # round trips stay on-chip and only the (requantized) result leaves.
    if out_bytes_per_element is None:
        out_bytes_per_element = acc_bytes
    # The accumulator block shares the L2 with the packed A panel.
    c_block = min(mc, m) * min(nc, n) * acc_bytes
    a_panel = min(mc, m) * min(kc, k) * a_bytes_per_element
    if c_block + a_panel <= l2_cap:
        dram += m * n * out_bytes_per_element
        c_l2 = 2 * c_total * k_blocks
    else:
        dram += 2 * c_total * k_blocks
        c_l2 = 0.0

    # --- L2 -> L1 traffic ------------------------------------------------------
    if a_total + b_total <= l1_cap:
        l2 = a_total + b_total         # fully L1-resident after first read
    else:
        a_passes_l1 = math.ceil(n / nr)
        b_passes_l1 = max(1, math.ceil(m / mc))
        l2 = a_total * a_passes_l1 + b_total * b_passes_l1
    l2 += c_l2
    return TrafficBreakdown(l2_bytes=l2, dram_bytes=dram)


def weights_footprint_bytes(n_weights: int, bits: int) -> float:
    """Model-weights footprint at a given bitwidth (memory-saving claims)."""
    return n_weights * bits / 8.0
