"""SoC description and calibrated timing constants.

Hard facts from the paper (Section IV-A, IV-C):

* Sargantana-class RV64G host: 7-stage, in-order, single-issue, 1.2 GHz;
* L1d 32 KB, L2 512 KB (sensitivity study: 16 KB / 64 KB variants);
* bs.set / bs.ip / bs.get issue in a single cycle;
* SoC area 1.96 mm2 in GF 22FDX.

Everything else in this file is a *calibrated constant*: a per-instruction
or per-cache-line cost that cannot be read off the paper directly.  The
calibration procedure (documented in DESIGN.md and EXPERIMENTS.md) fixes
them once against three anchors of Section IV-B -- the steady-state a8-w8
(10.2x), a4-w4 (~16x) and a2-w2 (27.2x) speedups over the DGEMM baseline
-- and never re-tunes them per experiment; every other number the harness
reports is then a prediction of the model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SocParams:
    """The evaluated SoC (paper Section IV-A)."""

    freq_ghz: float = 1.2
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 512 * 1024
    line_bytes: int = 64
    rf_registers: int = 32
    mul_width: int = 64

    def with_caches(self, l1_bytes: int, l2_bytes: int) -> "SocParams":
        return replace(self, l1_bytes=l1_bytes, l2_bytes=l2_bytes)


#: The PnR'd SoC of Figure 8.
PAPER_SOC = SocParams()

#: The reduced-cache variant of the Section IV-B exploration.
SMALL_CACHE_SOC = PAPER_SOC.with_caches(16 * 1024, 64 * 1024)


@dataclass(frozen=True)
class ScalarCosts:
    """Issue-slot costs (cycles) on the in-order single-issue host.

    ``fp_*`` model the RV64G double-precision path (load-use latency on a
    7-stage in-order pipeline exposes several cycles per dependent load);
    ``int_*`` model the int8 BLIS variant.  Calibrated against the paper's
    DGEMM anchors; see the module docstring.
    """

    # 64-bit DGEMM micro-kernel.
    fp_load: float = 4.0
    fp_mac: float = 2.0          # fmadd.d issue + exposed latency share
    fp_kstep_overhead: float = 3.0
    # int8 scalar micro-kernel (no SIMD: one element per operation).
    int_load: float = 1.0
    int_mac: float = 2.0         # mul + add
    int_kstep_overhead: float = 3.0
    # C write-back per element (load, add, store).
    c_update: float = 3.0


@dataclass(frozen=True)
class MemoryCosts:
    """Stall costs per 64-byte line, by source level.

    In-order cores overlap misses poorly; the penalties below are the
    effective (partially pipelined) per-line stalls.
    """

    l2_line_stall: float = 12.0
    dram_line_stall: float = 80.0
    #: Fraction of a cache's capacity usable by GEMM working sets before
    #: conflict misses defeat the blocking.
    cache_utilization: float = 0.75


@dataclass(frozen=True)
class MixKernelCosts:
    """Scalar-core costs around the bs.* intrinsics (u-kernel loop)."""

    load: float = 1.0            # u-vector load hitting L1/RF
    inner_overhead: float = 4.0  # per (i, j) innermost iteration
    kgroup_overhead: float = 4.0  # LoadNextAddress pointer bumps
    get: float = 1.0
    c_update: float = 3.0


DEFAULT_SCALAR_COSTS = ScalarCosts()
DEFAULT_MEMORY_COSTS = MemoryCosts()
DEFAULT_MIX_COSTS = MixKernelCosts()

#: Accumulator width in bytes: int32 for quantized GEMM, fp64 for DGEMM.
INT_ACC_BYTES = 4
FP_ACC_BYTES = 8
