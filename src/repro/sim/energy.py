"""Energy / power model (paper Section IV-C).

The paper's efficiency numbers come from post-PnR gate-level simulation,
"considering the total power consumption of the u-engine and the processor
multiplier".  This model reproduces that accounting with per-event dynamic
energies plus a static/clock floor, calibrated (once) so the evaluated
subsystem draws ~10 mW at 1.2 GHz under full activity -- which lands the
six networks inside the paper's 477.5 GOPS/W ... 1.3 TOPS/W band.  The
*spread* across configurations and networks then emerges from the
performance model: efficiency is throughput-per-watt, so every MAC/cycle
effect (DSU schedules, skinny layers, memory stalls) shows up here too.

Energy magnitudes are GF 22FDX-plausible: a 64-bit multiply costs a few
pJ; register/SRAM accesses fractions of a pJ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MixGemmConfig
from repro.core.microengine import group_schedule

from .perf import MixGemmPerfModel, PerfResult


@dataclass(frozen=True)
class EnergyParams:
    """Per-event dynamic energies (pJ) and the static floor (pJ/cycle)
    for the u-engine + multiplier subsystem."""

    multiply_pj: float = 4.2        # one 64-bit multiplier pass
    dsu_dcu_pj: float = 1.05        # select + convert, per active cycle
    dfu_accumulate_pj: float = 1.3  # slice + add + AccMem write
    buffer_word_pj: float = 0.6     # Source Buffer write + read, per word
    static_pj_per_cycle: float = 2.8  # clock tree + leakage share

    @property
    def active_pj_per_cycle(self) -> float:
        """Energy of one fully-active engine cycle (excl. buffer words)."""
        return (self.multiply_pj + self.dsu_dcu_pj
                + self.dfu_accumulate_pj + self.static_pj_per_cycle)


DEFAULT_ENERGY = EnergyParams()


@dataclass(frozen=True)
class EnergyResult:
    """Energy accounting for one kernel or network execution."""

    energy_pj: float
    macs: int
    seconds: float

    @property
    def ops(self) -> int:
        return 2 * self.macs

    @property
    def watts(self) -> float:
        """Average power draw over the run, in watts (W)."""
        return self.energy_pj * 1e-12 / self.seconds

    @property
    def gops_per_watt(self) -> float:
        """Energy efficiency in GOPS/W (the paper's headline metric)."""
        return (self.ops / self.seconds) / self.watts / 1e9

    @property
    def tops_per_watt(self) -> float:
        """Energy efficiency in TOPS/W (= GOPS/W / 1000)."""
        return self.gops_per_watt / 1000.0


class EnergyModel:
    """Computes subsystem energy for Mix-GEMM executions."""

    def __init__(self, params: EnergyParams = DEFAULT_ENERGY) -> None:
        self.params = params

    def from_perf(self, perf: PerfResult,
                  config: MixGemmConfig) -> EnergyResult:
        """Energy of one modelled execution.

        Event counts derive from the performance result: every engine
        cycle is one multiplier pass + one accumulate; buffer-word events
        follow from the u-vector word counts of the configuration.
        """
        p = self.params
        lay = config.layout
        sched = group_schedule(config)
        # Words pushed per accumulation group (both streams).
        words_per_group = lay.kua + lay.kub
        groups = perf.macs / max(sched.n_elements, 1)
        active = perf.engine_cycles
        energy = (
            active * (p.multiply_pj + p.dsu_dcu_pj + p.dfu_accumulate_pj)
            + groups * words_per_group * p.buffer_word_pj
            + perf.total_cycles * p.static_pj_per_cycle
        )
        return EnergyResult(
            energy_pj=energy,
            macs=perf.macs,
            seconds=perf.seconds,
        )

    def network_efficiency(
        self,
        inventory,
        config: MixGemmConfig,
        perf_model: MixGemmPerfModel | None = None,
    ) -> EnergyResult:
        """GOPS/W of a whole CNN (conv layers, as in Section IV-C)."""
        model = perf_model or MixGemmPerfModel()
        perf = model.network(inventory, config)
        return self.from_perf(perf, config)
