"""SoC-level composition: performance + area + energy + scalability.

Ties the individual models together into the evaluated system (Figure 8):
the RV64 core with its u-engine, the cache hierarchy, and the derived
figures the paper reports at SoC level -- including the Section IV-B
cache-shrinking study and the Section III-B multi-core / wider-SIMD
scalability projections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import MixGemmConfig

from .area import SocArea, UEngineArea
from .dse import optimal_blocking
from .energy import EnergyModel, EnergyResult
from .params import PAPER_SOC, SocParams
from .perf import MixGemmPerfModel, PerfResult


@dataclass
class MixGemmSoc:
    """The full evaluated system: one place to ask any paper question."""

    params: SocParams = PAPER_SOC
    adapt_blocking: bool = True
    perf: MixGemmPerfModel = field(init=False)
    energy: EnergyModel = field(init=False)
    area: SocArea = field(init=False)

    def __post_init__(self) -> None:
        self.perf = MixGemmPerfModel(self.params)
        self.energy = EnergyModel()
        self.area = SocArea(
            l1d_kb=self.params.l1_bytes // 1024,
            l2_kb=self.params.l2_bytes // 1024,
        )

    def _configured(self, config: MixGemmConfig) -> MixGemmConfig:
        """Re-block a configuration for this SoC's cache sizes."""
        if not self.adapt_blocking:
            return config
        blocking = optimal_blocking(self.params).blocking
        from dataclasses import replace
        return replace(config, blocking=blocking)

    def gemm(self, m: int, n: int, k: int,
             config: MixGemmConfig) -> PerfResult:
        return self.perf.gemm(m, n, k, self._configured(config))

    def network(self, inventory, config: MixGemmConfig) -> PerfResult:
        return self.perf.network(inventory, self._configured(config))

    def network_efficiency(self, inventory,
                           config: MixGemmConfig) -> EnergyResult:
        cfg = self._configured(config)
        return self.energy.from_perf(
            self.perf.network(inventory, cfg), cfg
        )

    @property
    def uengine_area_overhead(self) -> float:
        """u-engine share of SoC logic area (paper: 1%)."""
        return UEngineArea().soc_overhead()


def cache_sensitivity(
    sizes: list[tuple[int, int]],
    workload: list[tuple[int, int, int]],
    configs: list[MixGemmConfig],
) -> dict[tuple[int, int], float]:
    """Average slowdown vs the default SoC for reduced cache sizes.

    Reproduces the Section IV-B exploration: the paper reports 5.2% for
    L1 64->16 KB, 7% for L2 512->64 KB, and 11.8% for both, on the square
    GEMM benchmark across all supported data sizes.
    """
    reference = MixGemmSoc(PAPER_SOC)
    ref_cycles = {
        (dims, cfg.name): reference.gemm(*dims, cfg).total_cycles
        for dims in workload for cfg in configs
    }
    out: dict[tuple[int, int], float] = {}
    for l1, l2 in sizes:
        soc = MixGemmSoc(PAPER_SOC.with_caches(l1, l2))
        ratios = []
        for dims in workload:
            for cfg in configs:
                cycles = soc.gemm(*dims, cfg).total_cycles
                ratios.append(cycles / ref_cycles[(dims, cfg.name)])
        out[(l1, l2)] = sum(ratios) / len(ratios) - 1.0
    return out


@dataclass(frozen=True)
class ScalabilityProjection:
    """Section III-B scalability estimates (multi-core / wider SIMD)."""

    cores: int = 1
    simd_multipliers: int = 1
    #: Per-core efficiency retention for the threaded BLIS (refs [67],
    #: [73] report near-linear scaling for many-threaded BLIS).
    thread_efficiency: float = 0.95

    def throughput_scale(self) -> float:
        """Projected throughput multiplier over the single-core engine."""
        return self.cores * self.thread_efficiency ** (self.cores > 1) \
            * self.simd_multipliers

    def area_overhead_scale(self) -> float:
        """u-engine area grows with cores and with multiplier lanes
        (Source Buffers and DSU/DCU widen with the SIMD datapath)."""
        return self.cores * self.simd_multipliers
