"""Physical-design area model (paper Section IV-C, Table II, Figure 8).

The paper implements the SoC in GF 22FDX and reports a post-PnR area
breakdown of the u-engine (Table II); those figures are the ground truth
this model is anchored to.  Around them it provides:

* component scaling rules (Source Buffer area vs depth, AccMem vs slots),
  calibrated to the one scaling point the paper reports (+67.6% u-engine
  area from 16- to 32-entry buffers);
* SoC composition (core, caches, u-engine, pad ring) summing to the
  1.96 mm2 Figure 8 layout, with the cache density implied by the
  Section IV-B claim that shrinking L1+L2 to 16 KB / 64 KB saves 53%;
* DeepScaleTool-style technology scaling, anchored to the paper's own
  65 nm -> 22 nm comparisons against Eyeriss and UNPU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Post-PnR u-engine component areas in um^2 (paper Table II).
TABLE2_AREAS_UM2 = {
    "source_buffers": 4934.63,
    "dsu": 1094.45,
    "dcu": 2832.46,
    "dfu": 1842.25,
    "adder": 741.58,
    "accmem": 1214.35,
    "control_unit": 981.43,
}

#: Table II total (um^2).
UENGINE_TOTAL_UM2 = 13641.14

#: SoC overhead percentages (paper Table II, right column).
TABLE2_OVERHEAD_PCT = {
    "source_buffers": 0.36,
    "dsu": 0.08,
    "dcu": 0.21,
    "dfu": 0.13,
    "adder": 0.05,
    "accmem": 0.09,
    "control_unit": 0.08,
}

#: Full SoC die area incl. the IO pad ring (Figure 8).
SOC_DIE_MM2 = 1.96

#: The area base of Table II's overhead column (u-engine / 1%).
SOC_LOGIC_MM2 = UENGINE_TOTAL_UM2 / 1e6 / 0.01

#: Power overhead of the u-engine on the SoC (Section IV-C).
UENGINE_POWER_OVERHEAD = 0.023

#: Source-buffer area growth 16 -> 32 entries (+67.6% on the u-engine
#: total, Section III-C) implies superlinear buffer scaling; the exponent
#: is fit to that single point.
_SB_GROWTH_AT_2X = (UENGINE_TOTAL_UM2 * 0.676
                    + TABLE2_AREAS_UM2["source_buffers"]) \
    / TABLE2_AREAS_UM2["source_buffers"]
SOURCE_BUFFER_EXPONENT = math.log2(_SB_GROWTH_AT_2X)

#: Cache macro density implied by the 53% SoC-area saving when dropping
#: 496 KB of SRAM (Section IV-B).
CACHE_MM2_PER_KB = 0.53 * SOC_DIE_MM2 / 496.0

#: DeepScaleTool-style area scale factors to 22 nm, anchored to the
#: paper's Eyeriss (96.8x) and UNPU (126.5x) comparisons.
AREA_SCALE_TO_22NM = {
    22: 1.0,
    28: 0.65,
    40: 0.33,
    65: 0.1077,
}


@dataclass(frozen=True)
class UEngineArea:
    """Parametric u-engine area (um^2)."""

    source_buffer_depth: int = 16
    accmem_slots: int = 16
    components: dict = field(default_factory=lambda: dict(TABLE2_AREAS_UM2))

    def component_area(self, name: str) -> float:
        base = self.components[name]
        if name == "source_buffers":
            return base * (self.source_buffer_depth / 16) \
                ** SOURCE_BUFFER_EXPONENT
        if name == "accmem":
            return base * self.accmem_slots / 16
        return base

    @property
    def total_um2(self) -> float:
        return sum(self.component_area(n) for n in self.components)

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6

    def soc_overhead(self, soc_logic_mm2: float = SOC_LOGIC_MM2) -> float:
        return self.total_mm2 / soc_logic_mm2

    def breakdown(self) -> dict[str, tuple[float, float]]:
        """(area um^2, SoC overhead %) per component, Table II layout."""
        return {
            name: (
                self.component_area(name),
                100 * self.component_area(name) / 1e6 / SOC_LOGIC_MM2,
            )
            for name in self.components
        }


@dataclass(frozen=True)
class SocArea:
    """SoC floorplan composition (Figure 8)."""

    l1d_kb: int = 32
    l1i_kb: int = 16
    l2_kb: int = 512
    uengine: UEngineArea = field(default_factory=UEngineArea)

    @property
    def cache_mm2(self) -> float:
        return (self.l1d_kb + self.l1i_kb + self.l2_kb) * CACHE_MM2_PER_KB

    @property
    def core_and_pads_mm2(self) -> float:
        """Everything that is neither cache nor u-engine, fit so the
        default configuration reproduces the 1.96 mm2 die."""
        default_caches = (32 + 16 + 512) * CACHE_MM2_PER_KB
        return SOC_DIE_MM2 - default_caches - UENGINE_TOTAL_UM2 / 1e6

    @property
    def total_mm2(self) -> float:
        return self.core_and_pads_mm2 + self.cache_mm2 \
            + self.uengine.total_mm2

    def area_saving_vs_default(self) -> float:
        """Fractional die-area saving relative to the Figure 8 SoC."""
        return 1.0 - self.total_mm2 / SOC_DIE_MM2


def scale_area(area_mm2: float, from_nm: int, to_nm: int = 22) -> float:
    """Scale an area figure between technology nodes (DeepScaleTool-style).

    Only nodes present in :data:`AREA_SCALE_TO_22NM` are supported; the
    anchor values reproduce the paper's Eyeriss/UNPU comparisons.
    """
    try:
        from_factor = AREA_SCALE_TO_22NM[from_nm]
        to_factor = AREA_SCALE_TO_22NM[to_nm]
    except KeyError as exc:
        raise ValueError(
            f"no scale factor for node {exc}; known: "
            f"{sorted(AREA_SCALE_TO_22NM)}"
        ) from None
    # factor[n] converts an area at node n into its 22 nm equivalent.
    return area_mm2 * from_factor / to_factor
