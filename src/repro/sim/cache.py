"""Set-associative cache model (the SoC's L1/L2 hierarchy).

The paper's SoC carries a 32 KB L1d and a 512 KB L2 (Section IV-A); the
cache-sensitivity study (Section IV-B) shrinks them to 16 KB / 64 KB.  This
is a classic write-back, write-allocate, LRU, set-associative model with
hit/miss statistics; the analytic performance model uses closed-form
traffic instead (validated against this simulator in the tests), while the
DSE and education-oriented examples drive this one directly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.errors import ReproError


class CacheError(ReproError, ValueError):
    """Raised for invalid cache geometries."""


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass
class CacheStats:
    """Access counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


class Cache:
    """One write-back, write-allocate, LRU set-associative cache level."""

    def __init__(
        self,
        size_bytes: int,
        line_bytes: int = 64,
        associativity: int = 8,
        *,
        name: str = "cache",
        next_level: "Cache | None" = None,
    ) -> None:
        if not _is_pow2(line_bytes):
            raise CacheError(f"line size must be a power of two: {line_bytes}")
        if size_bytes % (line_bytes * associativity):
            raise CacheError(
                f"{name}: size {size_bytes} not divisible by "
                f"line {line_bytes} x ways {associativity}"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.n_sets = size_bytes // (line_bytes * associativity)
        self.name = name
        self.next_level = next_level
        self.stats = CacheStats()
        # sets[set_index] maps tag -> dirty flag, in LRU order (last=MRU).
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def access(self, address: int, *, write: bool = False) -> bool:
        """Access one byte address; returns True on hit.

        Misses recurse into the next level (write-allocate), evicting LRU
        lines and writing back dirty victims.
        """
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        if tag in ways:
            self.stats.hits += 1
            ways.move_to_end(tag)
            if write:
                ways[tag] = True
            return True
        self.stats.misses += 1
        if self.next_level is not None:
            self.next_level.access(address, write=False)
        if len(ways) >= self.associativity:
            _, dirty = ways.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
                if self.next_level is not None:
                    # Write the victim back one level down.
                    self.next_level.stats.hits += 1
        ways[tag] = write
        return False

    def access_range(self, address: int, n_bytes: int, *,
                     write: bool = False) -> int:
        """Access a contiguous range; returns the number of line misses."""
        first = address // self.line_bytes
        last = (address + n_bytes - 1) // self.line_bytes
        misses = 0
        for line in range(first, last + 1):
            if not self.access(line * self.line_bytes, write=write):
                misses += 1
        return misses

    def flush(self) -> None:
        """Drop all contents (keep statistics)."""
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()


@dataclass
class CacheHierarchy:
    """The SoC's two-level data-cache hierarchy with latency accounting."""

    l1_size: int = 32 * 1024
    l2_size: int = 512 * 1024
    line_bytes: int = 64
    l1_assoc: int = 8
    l2_assoc: int = 8
    # Memory-hierarchy latencies are SoC simulation parameters, not
    # u-kernel issue costs: they are outside the calibrated cost
    # model's digest on purpose.
    l1_latency: int = 2      # repro: noqa REP013
    l2_latency: int = 12     # repro: noqa REP013
    dram_latency: int = 80   # repro: noqa REP013
    l1: Cache = field(init=False)
    l2: Cache = field(init=False)

    def __post_init__(self) -> None:
        self.l2 = Cache(self.l2_size, self.line_bytes, self.l2_assoc,
                        name="L2")
        self.l1 = Cache(self.l1_size, self.line_bytes, self.l1_assoc,
                        name="L1d", next_level=self.l2)

    def load(self, address: int, n_bytes: int = 8) -> int:
        """Load; returns the modelled latency in cycles."""
        l1_hits_before = self.l1.stats.hits
        l2_misses_before = self.l2.stats.misses
        self.l1.access_range(address, n_bytes)
        if self.l1.stats.hits > l1_hits_before and \
                self.l2.stats.misses == l2_misses_before:
            return self.l1_latency
        if self.l2.stats.misses > l2_misses_before:
            return self.dram_latency
        return self.l2_latency

    def store(self, address: int, n_bytes: int = 8) -> int:
        l2_misses_before = self.l2.stats.misses
        hit = self.l1.access_range(address, n_bytes, write=True) == 0
        if hit:
            return self.l1_latency
        if self.l2.stats.misses > l2_misses_before:
            return self.dram_latency
        return self.l2_latency

    def reset(self) -> None:
        self.l1.flush()
        self.l2.flush()
        self.l1.reset_stats()
        self.l2.reset_stats()
