"""Analytic performance model of Mix-GEMM on the edge SoC.

Predicts cycle counts for arbitrarily large GEMMs by composing:

* the **DSU group schedule** (:func:`repro.core.microengine.group_cycles`)
  -- the per-group multiplier occupancy, derived exactly from the
  datapath, giving each configuration its 3-7 MAC/cycle character;
* the **scalar-core issue stream** of Algorithm 1 (loads, bs.ip, loop
  overhead, bs.get collection, C update), every instruction costing one
  issue slot on the single-issue host;
* the **memory traffic model** (:mod:`repro.sim.memory`) for L2/DRAM
  stalls under the BLIS blocking.

Within one k-group the Source Buffers decouple CPU and engine, so the
slower of the two sets the pace (``max(engine, cpu)``); the event-driven
:class:`~repro.core.microengine.MicroEngine` validates this composition on
small problems in the test-suite (the two models must agree within a few
percent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import MixGemmConfig
from repro.core.microengine import group_cycles
from repro.core.packing import aligned_kc

from .memory import TrafficBreakdown, gemm_traffic
from .params import (
    DEFAULT_MEMORY_COSTS,
    DEFAULT_MIX_COSTS,
    INT_ACC_BYTES,
    PAPER_SOC,
    MemoryCosts,
    MixKernelCosts,
    SocParams,
)


@dataclass(frozen=True)
class PerfResult:
    """Cycle breakdown for one GEMM (or one lowered conv layer)."""

    m: int
    n: int
    k: int
    macs: int
    engine_cycles: float
    cpu_cycles: float
    collection_cycles: float
    memory_stall_cycles: float
    traffic: TrafficBreakdown
    freq_ghz: float

    @property
    def compute_cycles(self) -> float:
        """Issue/engine cycles with buffer overlap applied."""
        return max(self.engine_cycles, self.cpu_cycles) \
            + self.collection_cycles

    @property
    def total_cycles(self) -> float:
        """End-to-end latency in core clock cycles."""
        return self.compute_cycles + self.memory_stall_cycles

    @property
    def macs_per_cycle(self) -> float:
        """Sustained throughput in MACs per clock cycle."""
        return self.macs / self.total_cycles

    @property
    def gops(self) -> float:
        """Throughput in GOPS (2 ops/MAC)."""
        return 2.0 * self.macs_per_cycle * self.freq_ghz

    @property
    def seconds(self) -> float:
        """Wall-clock latency in seconds at ``freq_ghz``."""
        return self.total_cycles / (self.freq_ghz * 1e9)

    def scaled(self, batch: int) -> "PerfResult":
        """Same kernel repeated ``batch`` times (per-image batching)."""
        return PerfResult(
            m=self.m, n=self.n, k=self.k, macs=self.macs * batch,
            engine_cycles=self.engine_cycles * batch,
            cpu_cycles=self.cpu_cycles * batch,
            collection_cycles=self.collection_cycles * batch,
            memory_stall_cycles=self.memory_stall_cycles * batch,
            traffic=self.traffic, freq_ghz=self.freq_ghz,
        )


def combine(results: list[PerfResult],
            freq_ghz: float | None = None) -> PerfResult:
    """Aggregate per-layer results into a whole-network figure.

    Layers execute serially, so each layer's engine/CPU overlap resolves
    *before* aggregation: the combined ``engine_cycles`` carries every
    layer's binding side (``max``) and ``cpu_cycles`` the hidden side,
    keeping ``compute_cycles`` equal to the sum of per-layer compute.
    """
    if not results:
        raise ValueError("nothing to combine")
    freq = freq_ghz if freq_ghz is not None else results[0].freq_ghz
    return PerfResult(
        m=0, n=0, k=0,
        macs=sum(r.macs for r in results),
        engine_cycles=sum(max(r.engine_cycles, r.cpu_cycles)
                          for r in results),
        cpu_cycles=sum(min(r.engine_cycles, r.cpu_cycles)
                       for r in results),
        collection_cycles=sum(r.collection_cycles for r in results),
        memory_stall_cycles=sum(r.memory_stall_cycles for r in results),
        traffic=TrafficBreakdown(
            l2_bytes=sum(r.traffic.l2_bytes for r in results),
            dram_bytes=sum(r.traffic.dram_bytes for r in results),
        ),
        freq_ghz=freq,
    )


class MixGemmPerfModel:
    """Cycle model for Mix-GEMM GEMM calls on a given SoC."""

    def __init__(
        self,
        soc: SocParams = PAPER_SOC,
        *,
        costs: MixKernelCosts = DEFAULT_MIX_COSTS,
        mem_costs: MemoryCosts = DEFAULT_MEMORY_COSTS,
    ) -> None:
        self.soc = soc
        self.costs = costs
        self.mem_costs = mem_costs

    def gemm(self, m: int, n: int, k: int,
             config: MixGemmConfig) -> PerfResult:
        """Predict one GEMM's cycle breakdown."""
        if min(m, n, k) < 1:
            raise ValueError(f"degenerate GEMM {m}x{n}x{k}")
        blk = config.blocking
        lay = config.layout
        costs = self.costs

        ge = lay.group_elements
        full_groups, rem = divmod(k, ge)
        # kc counts 64-bit u-vectors (Table I); the logical span scales
        # with the compression factor.
        kc_eff = aligned_kc(blk.kc * lay.elems_a, ge)
        k_blocks = math.ceil(k / kc_eff)

        # Engine occupancy: each output element's inner product drains
        # through the DSU schedule group by group; a short tail group uses
        # a short schedule (the Control Unit's inner-product length is a
        # bs.set parameter).  Edge tiles issue fewer bs.ip via smaller
        # software loop bounds, so occupancy follows the *valid* output
        # count m*n exactly.
        per_pair_engine = full_groups * group_cycles(config)
        if rem:
            per_pair_engine += group_cycles(config, rem)

        # CPU issue stream, amortized per output element: u-vector loads
        # happen once per k-group per tile and are shared by the mr x nr
        # inner products.
        ku_iters = max(lay.kua, lay.kub)
        slots = blk.mr * blk.nr
        cpu_full = (
            costs.load * (lay.kua * blk.mr + lay.kub * blk.nr)
            + costs.kgroup_overhead
            + slots * (ku_iters + costs.inner_overhead)
        )
        per_pair_cpu = full_groups * cpu_full / slots
        if rem:
            wa = math.ceil(rem / lay.elems_a)
            wb = math.ceil(rem / lay.elems_b)
            cpu_rem = (
                costs.load * (wa * blk.mr + wb * blk.nr)
                + costs.kgroup_overhead
                + slots * (max(wa, wb) + costs.inner_overhead)
            )
            per_pair_cpu += cpu_rem / slots

        outputs = m * n
        engine_cycles = outputs * per_pair_engine
        cpu_cycles = outputs * per_pair_cpu

        # Collection + C update: one bs.get + accumulate per output per
        # k-block.
        collection = outputs * k_blocks * (costs.get + costs.c_update)

        traffic = gemm_traffic(
            m, n, k,
            a_bytes_per_element=config.bw_a / 8,
            b_bytes_per_element=config.bw_b / 8,
            acc_bytes=INT_ACC_BYTES,
            mc=blk.mc, nc=blk.nc, kc=kc_eff, mr=blk.mr, nr=blk.nr,
            soc=self.soc, costs=self.mem_costs,
            out_bytes_per_element=1.0,  # requantized before leaving
        )
        return PerfResult(
            m=m, n=n, k=k, macs=m * n * k,
            engine_cycles=engine_cycles,
            cpu_cycles=cpu_cycles,
            collection_cycles=collection,
            memory_stall_cycles=traffic.stall_cycles(
                self.mem_costs, self.soc.line_bytes
            ),
            traffic=traffic,
            freq_ghz=self.soc.freq_ghz,
        )

    def conv_layer(self, layer, config: MixGemmConfig,
                   *, batch: int = 1) -> PerfResult:
        """Predict one conv/fc layer lowered to GEMM (per group).

        ``layer`` is a :class:`repro.models.inventory.LayerSpec`; grouped
        convolutions run one GEMM per group.  ``batch > 1`` stacks output
        pixels across images into the GEMM's m dimension (the im2row
        batching of Section II-A), amortizing edge and setup overheads.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        m, k, n = layer.gemm_dims
        per_group = self.gemm(m * batch, n, k, config)
        if layer.groups == 1:
            return per_group
        return per_group.scaled(layer.groups)

    def network(self, inventory, config: MixGemmConfig,
                *, conv_only: bool = True, batch: int = 1) -> PerfResult:
        """Whole-network throughput over a layer inventory.

        ``conv_only=True`` matches Figure 7, which accounts "the execution
        time spent on each convolutional layer".
        """
        layers = inventory.conv_layers if conv_only else inventory.layers
        results = [self.conv_layer(layer, config, batch=batch)
                   for layer in layers]
        return combine(results, self.soc.freq_ghz)
