"""Design-space exploration (paper Section III-C, Table I).

Three studies, reproducing the paper's methodology:

* **Blocking parameters** -- the analytical model of Low et al. [45]:
  ``kc`` sized so one A + one B u-panel fill half the L1, ``mc`` so an A
  panel fills the L2, ``mr = nr`` from the register-file budget.  On the
  32 KB / 512 KB SoC this lands exactly on Table I's
  mc = nc = kc = 256, mr = nr = 4.
* **kua/kub and padding** -- the RF holds kua*mr + kub*nr u-vectors, so 4
  is the bound; the zero-padding overhead across all supported
  configurations averages ~2.4%.
* **Source Buffer depth** -- sweep depths {8, 16, 32} with the
  event-driven u-engine and read the PMU stall fractions (the paper
  measures 17.8% / 14.3% / 11.2% full-buffer stalls and 2.3% bs.get
  stalls at depth 32, and picks 16 after weighing the 67.6% area growth).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import (
    MixGemmConfig,
    BlockingParams,
    all_size_combinations,
    elements_per_uvector,
    select_ku,
)
from repro.core.gemm import MixGemm
from repro.core.config import UVectorLayout

from .params import PAPER_SOC, SocParams


@dataclass(frozen=True)
class BlockingDse:
    """Result of the analytical blocking derivation."""

    blocking: BlockingParams
    l1_bytes_used: int
    l2_bytes_used: int


def optimal_register_tile(rf_registers: int = 32) -> tuple[int, int]:
    """mr = nr from the RF budget.

    The RF must hold the kua*mr A and kub*nr B u-vectors (the C u-panel
    lives in the AccMem instead).  With kua = kub = 4 and a 32-register
    file, mr = nr = 4 exhausts it exactly: 4*4 + 4*4 = 32.
    """
    mr = int(math.isqrt(rf_registers // 2))
    return mr, mr


def optimal_blocking(soc: SocParams = PAPER_SOC,
                     *, l1_fraction: float = 0.5) -> BlockingDse:
    """Analytical blocking for a given SoC (Low et al. [45]).

    All k-dimension quantities are in 64-bit u-vectors (words):

    * ``kc``: one A u-panel (mr x kc words) plus one B u-panel (nr x kc)
      must fit the L1 share reserved for them;
    * ``mc``: the packed A panel (mc x kc words) must fit the L2;
    * ``nc``: matched to mc (no L3 on the SoC to size it against).
    """
    mr, nr = optimal_register_tile(soc.rf_registers)
    word_bytes = soc.mul_width // 8
    kc = int(soc.l1_bytes * l1_fraction // ((mr + nr) * word_bytes))
    mc = int(soc.l2_bytes // (kc * word_bytes))
    nc = mc
    blocking = BlockingParams(mc=mc, nc=nc, kc=kc, mr=mr, nr=nr)
    return BlockingDse(
        blocking=blocking,
        l1_bytes_used=(mr + nr) * kc * word_bytes,
        l2_bytes_used=mc * kc * word_bytes,
    )


# ---------------------------------------------------------------------------
# Padding overhead (kua/kub study)
# ---------------------------------------------------------------------------


def padding_overheads(max_ku: int = 4) -> dict[tuple[int, int], float]:
    """Zero-padding slot fraction for every (bw_a, bw_b) combination."""
    out = {}
    for bw_a, bw_b in all_size_combinations():
        kua, kub = select_ku(bw_a, bw_b, max_ku=max_ku)
        lay = UVectorLayout(bw_a=bw_a, bw_b=bw_b, kua=kua, kub=kub)
        out[(bw_a, bw_b)] = lay.padding_fraction
    return out


def average_padding_overhead(max_ku: int = 4) -> float:
    """Mean padding across supported configurations (paper: 2.4%)."""
    values = list(padding_overheads(max_ku).values())
    return float(np.mean(values))


# ---------------------------------------------------------------------------
# Source Buffer depth study
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BufferDepthResult:
    """PMU readout for one Source Buffer depth."""

    depth: int
    buffer_stall_fraction: float
    get_stall_fraction: float
    cycles: int


def buffer_depth_study(
    depths: tuple[int, ...] = (8, 16, 32),
    *,
    configs: list[tuple[int, int]] | None = None,
    gemm_size: tuple[int, int, int] = (16, 16, 768),
    seed: int = 0,
    backend: str = "auto",
) -> list[BufferDepthResult]:
    """Run GEMM tasks per buffer depth and read the PMU stall counters.

    Mirrors the paper's PMU methodology: benchmark GEMMs across supported
    data-size configurations and record the fraction of cycles the core
    stalls on full Source Buffers / on ``bs.get``.  The sweep defaults to
    ``auto`` backend dispatch, which rides the vectorized fast path; its
    stall counters come from the event engine's own micro-kernel timing
    oracle, so the measured fractions are identical either way (pass
    ``backend="event"`` to cross-check).
    """
    if configs is None:
        configs = [(8, 8), (8, 4), (6, 4), (4, 4), (3, 2), (2, 2)]
    rng = np.random.default_rng(seed)
    m, n, k = gemm_size
    results = []
    for depth in depths:
        stall_fractions = []
        get_fractions = []
        total_cycles = 0
        for bw_a, bw_b in configs:
            cfg = MixGemmConfig(
                bw_a=bw_a, bw_b=bw_b, source_buffer_depth=depth,
                blocking=BlockingParams(mc=16, nc=16, kc=64),
            )
            a = rng.integers(-(1 << (bw_a - 1)), 1 << (bw_a - 1),
                             size=(m, k))
            b = rng.integers(-(1 << (bw_b - 1)), 1 << (bw_b - 1),
                             size=(k, n))
            result = MixGemm(cfg, emulate_datapath=False,
                             backend=backend).gemm(a, b)
            pmu = result.pmu
            stall_fractions.append(pmu.buffer_stall_fraction)
            get_fractions.append(pmu.get_stall_fraction)
            total_cycles += result.cycles
        results.append(BufferDepthResult(
            depth=depth,
            buffer_stall_fraction=float(np.mean(stall_fractions)),
            get_stall_fraction=float(np.mean(get_fractions)),
            cycles=total_cycles,
        ))
    return results


# ---------------------------------------------------------------------------
# Analytic bitwidth sweep (closed-form cost model)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalyticSweepPoint:
    """Predicted performance of one bitwidth pair, no engine execution."""

    bw_a: int
    bw_b: int
    cycles: int
    macs: int
    macs_per_cycle: float
    buffer_stall_fraction: float
    get_stall_fraction: float


def analytic_bitwidth_sweep(
    configs: list[tuple[int, int]] | None = None,
    *,
    gemm_size: tuple[int, int, int] = (16, 16, 768),
    blocking: BlockingParams | None = None,
) -> list[AnalyticSweepPoint]:
    """Sweep bitwidth pairs through the calibrated closed-form cost model.

    The event-engine counterpart of this study
    (:func:`buffer_depth_study`) simulates every cycle; this one calls
    :func:`repro.analysis.cost.predict_gemm` instead -- O(1) per point
    once the per-bitwidth tile calibrations are warm -- so it scales to
    production GEMM sizes the simulator cannot touch.  The predictions
    are differentially tested against the engine in the cost-model test
    suite.
    """
    from repro.analysis.cost import predict_gemm

    if configs is None:
        configs = [(8, 8), (8, 4), (6, 4), (4, 4), (3, 2), (2, 2)]
    if blocking is None:
        blocking = BlockingParams(mc=16, nc=16, kc=64)
    m, n, k = gemm_size
    points = []
    for bw_a, bw_b in configs:
        cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b, blocking=blocking)
        bd = predict_gemm(cfg, None, m, n, k)
        cycles = max(bd.cycles, 1)
        points.append(AnalyticSweepPoint(
            bw_a=bw_a, bw_b=bw_b, cycles=bd.cycles,
            macs=bd.macs_issued,
            macs_per_cycle=bd.macs_issued / cycles,
            buffer_stall_fraction=bd.buffer_full_stall_cycles / cycles,
            get_stall_fraction=bd.get_stall_cycles / cycles,
        ))
    return points


# ---------------------------------------------------------------------------
# Table I assembly
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableI:
    """The DSE outcome table (paper Table I)."""

    mc: int
    nc: int
    kc: int
    mr: int
    nr: int
    kua: int
    kub: int
    accmem: int
    source_buffers: int


def table1(soc: SocParams = PAPER_SOC) -> TableI:
    """Reproduce Table I from the analytical DSE + buffer study outcome."""
    dse = optimal_blocking(soc)
    blk = dse.blocking
    kua, kub = select_ku(8, 8)
    return TableI(
        mc=blk.mc, nc=blk.nc, kc=blk.kc, mr=blk.mr, nr=blk.nr,
        kua=kua, kub=kub,
        accmem=blk.mr * blk.nr,
        source_buffers=16,  # chosen from the depth study + area tradeoff
    )
