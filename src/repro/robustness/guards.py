"""Runtime integrity guards: checksums, range checks, NaN/Inf fences.

The reliability model is layered (cheapest first):

* **finite guards** -- every inter-node tensor is checked for NaN/Inf,
  catching float-domain corruption (e.g. an exponent-bit flip in a
  shipped weight) the integer pipeline would otherwise propagate;
* **pack checksums** -- an FNV-1a digest over the packed u-vector words,
  computed at pack time and verified immediately before the u-kernel
  consumes them, so storage corruption between packing and compute is
  detected before it reaches the datapath;
* **range guards** -- the accumulated C of a ``k``-deep GEMM over
  ``bw_a``/``bw_b``-bit operands is algebraically bounded by
  ``k * max|a| * max|b|``; any value outside that bound proves an
  accumulator fault;
* **weight vault** -- a CRC32 per shipped tensor taken when the engine
  binds the graph, verified before each quantized layer consumes its
  weights; at the strictest level the vault keeps a golden replica
  (modelling ECC scrubbing) so a corrupted tensor is restored in place.

Everything sits behind the engine-level ``guard_level`` knob:

====== ========================================================
off     no checks (the seed repo's behaviour)
light   finite guards between graph nodes
standard light + pack checksums + range guards + weight vault
full    standard + per-layer shadow verification with recovery
====== ========================================================

Use :func:`measure_guard_overhead` to quantify what each level costs on
a given model.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.binseg import value_range
from repro.core.config import MixGemmConfig
from repro.core.packing import PackedMatrix

from .errors import GuardError

#: Ordered guard levels; each includes everything before it.
GUARD_LEVELS = ("off", "light", "standard", "full")

_WORD_MASK = 0xFFFFFFFFFFFFFFFF
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def guard_rank(level: str) -> int:
    """Numeric strictness of a guard level (0 = off)."""
    if level not in GUARD_LEVELS:
        raise GuardError(
            f"unknown guard level {level!r}; choose from {GUARD_LEVELS}",
            guard="config",
        )
    return GUARD_LEVELS.index(level)


# ---------------------------------------------------------------------------
# Pack-time checksums
# ---------------------------------------------------------------------------


def checksum_words(words) -> int:
    """64-bit FNV-1a over a sequence of u-vector words.

    Any single bit flip in any word changes the digest, which is all the
    guard needs (this is an error-*detection* code, not authentication).
    """
    h = _FNV_OFFSET
    for w in words:
        h ^= w & _WORD_MASK
        h = (h * _FNV_PRIME) & _WORD_MASK
    return h


def packed_checksum(packed: PackedMatrix) -> int:
    """Digest of every word of a packed operand, k-run order."""
    h = _FNV_OFFSET
    for kv in packed.kvectors:
        for w in kv.words:
            h ^= w & _WORD_MASK
            h = (h * _FNV_PRIME) & _WORD_MASK
    return h


def accumulator_bound(k: int, config: MixGemmConfig) -> int:
    """Largest |C| value a k-deep inner product can legally produce."""
    lo_a, hi_a = value_range(config.bw_a, config.signed_a)
    lo_b, hi_b = value_range(config.bw_b, config.signed_b)
    amax = max(abs(lo_a), abs(hi_a))
    bmax = max(abs(lo_b), abs(hi_b))
    return k * amax * bmax


class PackGuard:
    """Checksum + range guard bundle one :class:`MixGemm` instance uses.

    Duck-typed against ``core.gemm`` (the core layer never imports the
    robustness package): ``checksum`` at pack time, ``verify`` before
    consumption, ``check_result`` on the accumulated C.
    """

    def __init__(self, config: MixGemmConfig) -> None:
        self.config = config

    def checksum(self, packed: PackedMatrix) -> int:
        return packed_checksum(packed)

    def verify(self, packed: PackedMatrix, expected: int,
               operand: str) -> None:
        actual = packed_checksum(packed)
        if actual != expected:
            raise GuardError(
                f"u-vector checksum mismatch on operand {operand}: "
                f"stored words no longer match their pack-time digest "
                f"({actual:#018x} != {expected:#018x})",
                guard="checksum",
            )

    def check_result(self, c: np.ndarray, k: int) -> None:
        bound = accumulator_bound(k, self.config)
        worst = int(np.abs(c).max()) if c.size else 0
        if worst > bound:
            raise GuardError(
                f"accumulator range guard: |C| reaches {worst} but a "
                f"{k}-deep {self.config.name} inner product is bounded "
                f"by {bound}",
                guard="range",
            )


# ---------------------------------------------------------------------------
# Graph-level guards
# ---------------------------------------------------------------------------


def static_precheck(graph, *, accmem_bits: Optional[int] = None,
                    blocking=None) -> None:
    """Contract-check a graph before a fault-injection run touches it.

    Injecting faults into a model that already violates its static
    contracts (accumulator overflow, broken wiring, bad quantization
    metadata) produces meaningless campaign data, so the engine and
    ``repro faultsim`` call this first.  Raises :class:`GuardError`
    (``guard="static"``) naming the first error-severity diagnostic.
    """
    # Imported lazily: analysis -> runtime.engine -> guards would
    # otherwise be a cycle at import time.
    from repro.analysis import check_graph
    from repro.core.config import DEFAULT_ACCMEM_BITS

    if accmem_bits is None:
        accmem_bits = DEFAULT_ACCMEM_BITS
    report = check_graph(graph, accmem_bits=accmem_bits,
                         blocking=blocking)
    errors = report.errors
    if errors:
        first = errors[0]
        raise GuardError(
            f"static precheck failed ({len(errors)} error(s)); first: "
            f"[{first.rule}] node {first.node or '?'}: {first.message}",
            guard="static",
        )


def check_finite(label: str, arr: np.ndarray) -> None:
    """NaN/Inf fence between graph nodes."""
    if not np.all(np.isfinite(arr)):
        raise GuardError(
            f"non-finite values after node {label!r}",
            guard="finite",
        )


def _tensor_crc(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


@dataclass
class _VaultEntry:
    crc: int
    replica: np.ndarray


class TensorVault:
    """Checksums (and golden replicas) of every tensor shipped in a graph.

    Snapshot once when the engine binds the graph; verify each quantized
    node's tensors right before consumption.  On mismatch the tensor is
    restored in place from the replica -- the software analogue of ECC
    scrubbing -- and the caller is told which tensors were repaired.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[int, str], _VaultEntry] = {}

    @classmethod
    def snapshot(cls, graph) -> "TensorVault":
        vault = cls()
        for i, node in enumerate(graph):
            for name, tensor in node.tensors.items():
                vault._entries[(i, name)] = _VaultEntry(
                    crc=_tensor_crc(tensor), replica=tensor.copy(),
                )
        return vault

    def verify_and_restore(self, index: int, node) -> list[str]:
        """Check node ``index``'s tensors; repair and report any damage."""
        restored = []
        for name, tensor in node.tensors.items():
            entry = self._entries.get((index, name))
            if entry is None:
                continue
            if _tensor_crc(tensor) != entry.crc:
                tensor[...] = entry.replica
                restored.append(name)
        return restored


# ---------------------------------------------------------------------------
# Overhead measurement
# ---------------------------------------------------------------------------


def measure_guard_overhead(graph, x, *, backend: str = "mixgemm",
                           levels=GUARD_LEVELS,
                           repeats: int = 3) -> dict[str, float]:
    """Wall-clock seconds per inference at each guard level.

    Returns ``{level: best-of-repeats seconds}``; divide by the ``"off"``
    entry for the relative overhead the docs quote.
    """
    from repro.runtime.engine import InferenceEngine

    timings: dict[str, float] = {}
    for level in levels:
        engine = InferenceEngine(graph, backend=backend, guard_level=level)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            engine.run(x)
            best = min(best, time.perf_counter() - t0)
        timings[level] = best
    return timings
