"""Seeded, deterministic fault injection for the Mix-GEMM stack.

The fault model is the classic edge-reliability triple:

* **u-vector faults** (``uvector_a`` / ``uvector_b``) -- a bit flip in a
  packed operand word *after* packing and *before* the u-kernel consumes
  it, modelling soft errors in the compressed operand storage;
* **AccMem faults** (``accmem``) -- a bit flip in one accumulator slot
  mid-GEMM, modelling a particle strike in the micro-engine's AccMem;
* **weight faults** (``weight``) -- a high-order bit flip in a shipped
  float64 weight tensor, modelling persistent corruption of the
  deployed model file.

Faults are *transient for one firing*: each :class:`FaultSpec` fires
exactly once, so a retry after detection observes clean data -- except
weight faults, which persist in the graph until
:meth:`FaultInjector.restore` puts the original bytes back.

Everything is derived deterministically from a seed: the same
:class:`FaultPlan` replayed against the same model and input produces
the same flips, the same detections and the same recoveries, which is
what lets ``repro faultsim`` state reliability rates reproducibly.

:class:`FaultCampaign` orchestrates many single-fault trials and scores
them against the clean numpy reference output: a trial is *detected*
when any guard fired (or the run raised), *corrupted* when the final
output differs from the reference, *silent* when corrupted but not
detected, and *recovered* when a detected fault still ended in the
bit-exact reference output.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.core.errors import ReproError
from repro.core.packing import PackedMatrix

from .errors import FaultPlanError, ReliabilityWarning

#: Injection sites, in the order campaigns cycle through them.
FAULT_SITES = ("uvector_a", "uvector_b", "accmem", "weight")

#: AccMem faults fire when the running group counter hits
#: ``index % _ACCMEM_FIRE_WINDOW`` -- early in the GEMM, so every
#: realistically-sized layer offers the opportunity.
_ACCMEM_FIRE_WINDOW = 8

#: AccMem bit flips stay within the low 40 bits: high enough to escape
#: the range guard sometimes, low enough to model realistic accumulator
#: upsets (the paper's AccMem slots are 64-bit).
_ACCMEM_BIT_SPAN = 40

#: Weight faults flip one of the 16 most significant float64 bits
#: (sign / exponent / top mantissa), so the corruption is visible after
#: quantization instead of vanishing in rounding.
_WEIGHT_BIT_BASE = 48

_QUANT_OPS = ("quant_conv2d", "quant_linear")


def _payload_words(kv) -> list[tuple[int, int]]:
    """(word index, payload bits) for every word holding logical elements.

    Mirrors :meth:`repro.core.packing.KVector.unpack`: elements fill each
    group's words front to back, so the tail words of a short group are
    pure padding.
    """
    epw = kv.elems_per_word
    out = []
    for g in range(kv.n_groups):
        remaining = kv.elements_in_group(g)
        for w in range(kv.ku):
            if remaining <= 0:
                break
            take = min(remaining, epw)
            out.append((g * kv.ku + w, take * kv.bw))
            remaining -= take
    return out


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic bit flip.

    ``index`` and ``bit`` are raw entropy; each site maps them onto its
    own geometry (k-run/word, slot/group, element) modulo the target
    size, so a spec stays valid for any model.  ``layer`` restricts the
    fault to one quantized-GEMM call (``None`` = first opportunity).
    """

    site: str
    index: int
    bit: int
    layer: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; choose from "
                f"{FAULT_SITES}"
            )
        if self.index < 0 or self.bit < 0:
            raise FaultPlanError("index and bit must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seed-derived list of faults to inject."""

    faults: tuple[FaultSpec, ...]
    seed: Optional[int] = None

    @classmethod
    def generate(
        cls,
        seed: int,
        n_faults: int = 1,
        sites: Sequence[str] = FAULT_SITES,
        layers: Optional[Sequence[int]] = None,
    ) -> "FaultPlan":
        """Draw ``n_faults`` specs deterministically from ``seed``."""
        if n_faults < 1:
            raise FaultPlanError("n_faults must be at least 1")
        if not sites:
            raise FaultPlanError("sites cannot be empty")
        rng = np.random.default_rng(seed)
        faults = []
        for i in range(n_faults):
            layer = None if layers is None else int(rng.choice(layers))
            faults.append(FaultSpec(
                site=sites[i % len(sites)],
                index=int(rng.integers(0, 1 << 16)),
                bit=int(rng.integers(0, 1 << 16)),
                layer=layer,
            ))
        return cls(faults=tuple(faults), seed=seed)


@dataclass(frozen=True)
class InjectedFault:
    """Record of one fault that actually fired."""

    spec: FaultSpec
    layer: Optional[int]
    description: str


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`.

    Duck-typed against the core layer's hooks: ``on_pack`` is called by
    :class:`~repro.core.gemm.MixGemm` after each operand is compressed,
    ``on_accumulate`` by :class:`~repro.core.microengine.MicroEngine`
    after each accumulation group.  ``corrupt_weights`` is applied by the
    inference engine at the start of a run.  Each spec fires once; the
    ``injected`` list records what happened for campaign scoring.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.layer: Optional[int] = None
        self.injected: list[InjectedFault] = []
        self._pending = list(plan.faults)
        self._weight_backups: list[tuple[np.ndarray, np.ndarray]] = []

    # -- bookkeeping ---------------------------------------------------------

    def begin_layer(self, layer: int) -> None:
        """The engine announces which quantized-GEMM call is next."""
        self.layer = layer

    @property
    def exhausted(self) -> bool:
        return not self._pending

    def _take(self, sites: tuple[str, ...]) -> list[FaultSpec]:
        hits = [
            s for s in self._pending
            if s.site in sites and (s.layer is None or s.layer == self.layer)
        ]
        for s in hits:
            self._pending.remove(s)
        return hits

    def _record(self, spec: FaultSpec, description: str) -> None:
        self.injected.append(InjectedFault(
            spec=spec, layer=self.layer, description=description,
        ))

    # -- core hooks ----------------------------------------------------------

    def on_pack(self, operand: str, packed: PackedMatrix) -> PackedMatrix:
        """Flip bits in the freshly packed operand (storage corruption)."""
        site = "uvector_a" if operand == "A" else "uvector_b"
        for spec in self._take((site,)):
            packed = self._flip_packed(packed, spec, operand)
        return packed

    def _flip_packed(self, packed: PackedMatrix, spec: FaultSpec,
                     operand: str) -> PackedMatrix:
        run_idx = spec.index % packed.n_runs
        kv = packed.kvectors[run_idx]
        # Target words (and bit fields) that carry logical elements:
        # flips in pure-padding words are architecturally masked and
        # teach a campaign nothing.
        payload = _payload_words(kv)
        word_idx, field_bits = payload[
            (spec.index // max(1, packed.n_runs)) % len(payload)]
        bit = spec.bit % field_bits
        words = list(kv.words)
        words[word_idx] ^= 1 << bit
        kvectors = list(packed.kvectors)
        kvectors[run_idx] = replace(kv, words=tuple(words))
        self._record(spec, (
            f"flipped bit {bit} of u-vector word {word_idx} in k-run "
            f"{run_idx} of operand {operand}"
        ))
        return replace(packed, kvectors=tuple(kvectors))

    def on_accumulate(self, accmem: list[int], group_index: int) -> None:
        """Flip a bit in one AccMem slot when its trigger group passes."""
        for spec in list(self._pending):
            if spec.site != "accmem":
                continue
            if spec.layer is not None and spec.layer != self.layer:
                continue
            if group_index != spec.index % _ACCMEM_FIRE_WINDOW:
                continue
            self._pending.remove(spec)
            slot = (spec.index // _ACCMEM_FIRE_WINDOW) % len(accmem)
            bit = spec.bit % _ACCMEM_BIT_SPAN
            accmem[slot] ^= 1 << bit
            self._record(spec, (
                f"flipped bit {bit} of AccMem slot {slot} after "
                f"accumulation group {group_index}"
            ))

    # -- graph-level faults ---------------------------------------------------

    def corrupt_weights(self, graph) -> None:
        """Flip high-order bits in shipped weight tensors (persistent)."""
        quant_nodes = [
            (i, n) for i, n in enumerate(graph)
            if n.op in _QUANT_OPS and "weight" in n.tensors
        ]
        if not quant_nodes:
            return
        for spec in self._take(("weight",)):
            pos = (spec.index if spec.layer is None else spec.layer)
            node_index, node = quant_nodes[pos % len(quant_nodes)]
            tensor = node.tensors["weight"]
            flat_index = spec.index % tensor.size
            bit = _WEIGHT_BIT_BASE + spec.bit % (64 - _WEIGHT_BIT_BASE)
            self._weight_backups.append((tensor, tensor.copy()))
            bits = tensor.view(np.uint64)
            multi = np.unravel_index(flat_index, tensor.shape)
            bits[multi] ^= np.uint64(1) << np.uint64(bit)
            self._record(spec, (
                f"flipped float64 bit {bit} of weight element "
                f"{flat_index} in node {node_index} ({node.op})"
            ))

    def restore(self) -> None:
        """Undo every persistent (weight) corruption this injector made."""
        for tensor, backup in self._weight_backups:
            tensor[...] = backup
        self._weight_backups.clear()


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one single-fault inference trial."""

    spec: FaultSpec
    injected: bool
    detected: bool
    corrupted: bool
    failed: bool = False
    error: str = ""

    @property
    def silent(self) -> bool:
        """Output corrupted and nothing noticed -- the dangerous case."""
        return self.injected and self.corrupted and not self.detected

    @property
    def recovered(self) -> bool:
        """Fault injected, noticed, and the output still bit-exact."""
        return (self.injected and self.detected
                and not self.corrupted and not self.failed)


@dataclass
class CampaignReport:
    """Aggregate scores of a fault-injection campaign."""

    guard_level: str
    seed: int
    trials: list[TrialResult] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def n_injected(self) -> int:
        return sum(t.injected for t in self.trials)

    @property
    def n_detected(self) -> int:
        return sum(t.injected and t.detected for t in self.trials)

    @property
    def n_recovered(self) -> int:
        return sum(t.recovered for t in self.trials)

    @property
    def n_silent(self) -> int:
        return sum(t.silent for t in self.trials)

    @property
    def n_corrupted(self) -> int:
        return sum(t.injected and t.corrupted for t in self.trials)

    def _rate(self, count: int) -> float:
        return count / self.n_injected if self.n_injected else 0.0

    @property
    def detection_rate(self) -> float:
        return self._rate(self.n_detected)

    @property
    def recovery_rate(self) -> float:
        return self._rate(self.n_recovered)

    @property
    def silent_rate(self) -> float:
        return self._rate(self.n_silent)

    def by_site(self) -> dict[str, tuple[int, int, int]]:
        """Per-site (injected, detected, silent) counts."""
        out: dict[str, tuple[int, int, int]] = {}
        for site in FAULT_SITES:
            hits = [t for t in self.trials
                    if t.spec.site == site and t.injected]
            out[site] = (
                len(hits),
                sum(t.detected for t in hits),
                sum(t.silent for t in hits),
            )
        return out

    def render(self) -> str:
        lines = [
            f"guard_level={self.guard_level}: "
            f"{self.n_injected}/{self.n_trials} faults injected, "
            f"{self.n_detected} detected, {self.n_recovered} recovered, "
            f"{self.n_silent} silent corruptions",
            f"  detection {self.detection_rate:6.1%}   "
            f"recovery {self.recovery_rate:6.1%}   "
            f"silent {self.silent_rate:6.1%}",
        ]
        for site, (inj, det, silent) in self.by_site().items():
            if inj:
                lines.append(f"  {site:10s} injected={inj:2d} "
                             f"detected={det:2d} silent={silent:2d}")
        return "\n".join(lines)


def demo_graph(act_bits: int = 6, weight_bits: int = 4, seed: int = 11):
    """A small quantized CNN exported to the deployment IR.

    Shared by ``repro faultsim`` and the robustness tests: big enough
    that every fault site has real opportunities (hundreds of
    accumulation groups, multi-layer), small enough that dozens of
    simulated trials finish in seconds.
    """
    from repro.nn.layers import (
        Flatten,
        LayerQuantSpec,
        QuantConv2d,
        QuantLinear,
        ReLU,
        Sequential,
        seed_init,
    )
    from repro.runtime.graph import export_sequential

    seed_init(seed)
    spec_in = LayerQuantSpec(act_bits=act_bits, weight_bits=weight_bits,
                             act_signed=True)
    spec = LayerQuantSpec(act_bits=act_bits, weight_bits=weight_bits)
    # Flatten (not average pooling) ahead of the classifier: global
    # pooling divides a single-pixel corruption by the spatial area,
    # which quantization then rounds away -- realistic masking, but it
    # would hide exactly the silent corruption a campaign measures.
    model = Sequential(
        QuantConv2d(1, 4, 3, spec=spec_in, padding=1),
        ReLU(),
        QuantConv2d(4, 4, 3, spec=spec, padding=1),
        ReLU(),
        Flatten(),
        QuantLinear(4 * 6 * 6, 3, spec=spec),
    )
    model.eval()
    return export_sequential(model, name="faultsim-demo")


def demo_input(batch: int = 2, size: int = 6, seed: int = 0) -> np.ndarray:
    """Deterministic input batch matching :func:`demo_graph`."""
    return np.random.default_rng(seed).normal(size=(batch, 1, size, size))


class FaultCampaign:
    """Run many seeded single-fault trials and score the guard stack.

    Each trial builds a fresh engine over the same graph, injects one
    fault, and compares the final output against the clean numpy
    reference.  Weight corruption is rolled back after every trial so
    trials stay independent.
    """

    def __init__(self, graph=None, x: Optional[np.ndarray] = None, *,
                 seed: int = 0, n_trials: int = 24,
                 sites: Sequence[str] = FAULT_SITES) -> None:
        self.graph = demo_graph() if graph is None else graph
        self.x = demo_input() if x is None else x
        self.seed = seed
        if n_trials < 1:
            raise FaultPlanError("n_trials must be at least 1")
        rng = np.random.default_rng(seed)
        self.specs = [
            FaultSpec(
                site=sites[i % len(sites)],
                index=int(rng.integers(0, 1 << 16)),
                bit=int(rng.integers(0, 1 << 16)),
            )
            for i in range(n_trials)
        ]

    def run(self, guard_level: str = "full") -> CampaignReport:
        from repro.runtime.engine import InferenceEngine, SIM_BLOCKING

        from .guards import static_precheck

        # Fail the whole campaign up front (with the offending
        # diagnostic) instead of once per trial inside the engine.
        static_precheck(self.graph, blocking=SIM_BLOCKING)
        reference = InferenceEngine(
            self.graph, backend="numpy").run(self.x).output
        report = CampaignReport(guard_level=guard_level, seed=self.seed)
        for spec in self.specs:
            report.trials.append(
                self._trial(spec, guard_level, reference))
        return report

    def _trial(self, spec: FaultSpec, guard_level: str,
               reference: np.ndarray) -> TrialResult:
        from repro.runtime.engine import InferenceEngine

        plan = FaultPlan(faults=(spec,), seed=self.seed)
        engine = InferenceEngine(
            self.graph, backend="mixgemm",
            guard_level=guard_level, fault_plan=plan,
        )
        detected = False
        corrupted = False
        failed = False
        error = ""
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ReliabilityWarning)
                result = engine.run(self.x)
            detected = bool(result.fault_events)
            corrupted = not np.array_equal(result.output, reference)
        except ReproError as exc:
            # The run died loudly -- corruption, but not *silent*.
            detected = True
            corrupted = True
            failed = True
            error = str(exc)
        finally:
            engine.injector.restore()
        return TrialResult(
            spec=spec,
            injected=bool(engine.injector.injected),
            detected=detected,
            corrupted=corrupted,
            failed=failed,
            error=error,
        )
