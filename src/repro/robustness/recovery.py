"""Shadow verification and the detect -> retry -> fallback escalation.

The repo's two GEMM backends -- the numpy integer reference and the
bit-exact u-engine simulator -- agree bit for bit on a healthy machine
(asserted by the tier-1 suite).  That duality is an exploitable
redundancy: running the reference alongside the simulator turns *any*
output-corrupting fault in the simulated datapath into a detectable
mismatch, no matter which bit flipped.

:class:`ShadowVerifier` wraps the comparison; :class:`RecoveryPolicy`
fixes the escalation the inference engine follows when a guard or the
shadow trips:

1. **retry** the layer (a transient fault -- the model used by the fault
   injector -- does not recur, and re-packing refreshes the u-vectors);
2. after ``max_retries`` failed attempts, **fall back** to the reference
   backend's result for that layer and keep the run alive;
3. emit a structured :class:`~repro.robustness.errors.ReliabilityWarning`
   so operators see the degradation without the run dying.

Every step is recorded as a :class:`FaultEvent` on the
:class:`~repro.runtime.engine.InferenceResult`, so an inference run
doubles as a reliability report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class FaultEvent:
    """One detection (and what the runtime did about it)."""

    layer: str          # effective node id of the affected layer
    op: str             # node op ("quant_conv2d", ...)
    detected_by: str    # "checksum" | "range" | "finite" | "weight" | "shadow"
    action: str         # "retried" | "fallback" | "restored" | "raised"
    message: str = ""


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the engine escalates when a guard trips.

    ``max_retries`` re-executions per layer before degrading;
    ``fallback`` chooses between degrading to the reference backend and
    raising the detection to the caller; ``warn`` controls the
    :class:`~repro.robustness.errors.ReliabilityWarning` on fallback;
    ``static_precheck`` makes fault-injection runs contract-check the
    graph first (:func:`repro.robustness.guards.static_precheck`) so a
    campaign never measures a model that was broken to begin with.
    """

    max_retries: int = 1
    fallback: bool = True
    warn: bool = True
    static_precheck: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")


@dataclass(frozen=True)
class BreakerPolicy:
    """When the serving circuit breaker trips and how it recovers.

    The breaker watches per-batch :class:`FaultEvent` records coming out
    of guarded inference runs: ``failure_threshold`` *consecutive*
    faulty batches open the circuit, after which the worker pool serves
    from the clean numpy reference backend (responses carry degraded
    metadata) instead of hammering a datapath that keeps tripping its
    guards.  After ``cooldown_s`` the breaker goes half-open and lets a
    single probe batch through the primary backend: a clean probe closes
    the circuit, a faulty one re-opens it with the cooldown multiplied
    by ``backoff`` (capped at ``max_cooldown_s``) -- classic exponential
    backoff so a persistently faulty deployment converges to rare,
    cheap probes.
    """

    failure_threshold: int = 3
    cooldown_s: float = 0.25
    backoff: float = 2.0
    max_cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.max_cooldown_s < self.cooldown_s:
            raise ValueError("max_cooldown_s must be >= cooldown_s")


class ShadowVerifier:
    """Cross-checks a simulated layer output against the reference.

    The reference is the same integer GEMM the numpy backend would have
    produced; agreement must be exact because both sides compute exact
    integer arithmetic.
    """

    def __init__(self) -> None:
        self.checked = 0
        self.mismatched = 0

    def reference(self, x_q: np.ndarray, w_q: np.ndarray) -> np.ndarray:
        return np.asarray(x_q, dtype=np.int64) @ np.asarray(
            w_q, dtype=np.int64)

    def matches(self, simulated: np.ndarray,
                reference: np.ndarray) -> bool:
        self.checked += 1
        ok = bool(np.array_equal(simulated, reference))
        if not ok:
            self.mismatched += 1
        return ok


@dataclass
class ReliabilityStats:
    """Aggregated view of a run's fault events (convenience for reports)."""

    events: list[FaultEvent] = field(default_factory=list)

    @property
    def detections(self) -> int:
        return len(self.events)

    def by_guard(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.detected_by] = counts.get(e.detected_by, 0) + 1
        return counts
