"""Reliability layer: fault injection, integrity guards, recovery.

The paper assumes a trusted SW kernel library; edge deployments cannot.
This package makes the reproduction's reliability *testable*:

* :mod:`~repro.robustness.faults` -- seeded bit-flip injection into
  packed u-vectors, AccMem slots and shipped weights, plus campaign
  orchestration (``repro faultsim``);
* :mod:`~repro.robustness.guards` -- pack-time checksums, accumulator
  range guards, NaN/Inf fences and the weight vault, behind the
  engine's ``guard_level`` knob;
* :mod:`~repro.robustness.recovery` -- shadow verification against the
  numpy integer reference with a retry -> fallback -> warning
  escalation;
* :mod:`~repro.robustness.errors` -- :class:`GuardError` and friends on
  the shared :class:`~repro.core.errors.ReproError` base.
"""

from .errors import (
    OVERLOAD_REASONS,
    FaultPlanError,
    GuardError,
    OverloadError,
    ReliabilityWarning,
    ReproError,
)
from .faults import (
    FAULT_SITES,
    CampaignReport,
    FaultCampaign,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TrialResult,
    demo_graph,
    demo_input,
)
from .guards import (
    GUARD_LEVELS,
    PackGuard,
    TensorVault,
    accumulator_bound,
    check_finite,
    checksum_words,
    guard_rank,
    measure_guard_overhead,
    packed_checksum,
)
from .recovery import (
    BreakerPolicy,
    FaultEvent,
    RecoveryPolicy,
    ReliabilityStats,
    ShadowVerifier,
)

__all__ = [
    "FaultPlanError",
    "GuardError",
    "OVERLOAD_REASONS",
    "OverloadError",
    "ReliabilityWarning",
    "ReproError",
    "FAULT_SITES",
    "CampaignReport",
    "FaultCampaign",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "TrialResult",
    "demo_graph",
    "demo_input",
    "GUARD_LEVELS",
    "PackGuard",
    "TensorVault",
    "accumulator_bound",
    "check_finite",
    "checksum_words",
    "guard_rank",
    "measure_guard_overhead",
    "packed_checksum",
    "BreakerPolicy",
    "FaultEvent",
    "RecoveryPolicy",
    "ReliabilityStats",
    "ShadowVerifier",
]
