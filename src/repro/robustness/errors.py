"""Errors and warnings raised by the reliability layer.

All errors derive from :class:`repro.core.errors.ReproError`, the shared
base the rest of the stack adopted, so one ``except ReproError`` catches
datapath, graph and guard failures alike.
"""

from __future__ import annotations

from repro.core.errors import ReproError


class GuardError(ReproError, RuntimeError):
    """An integrity guard tripped: the data it protects is corrupted.

    ``guard`` names the mechanism that fired (``"checksum"``, ``"range"``,
    ``"finite"`` or ``"weight"``) so recovery policies and campaign
    reports can attribute detections.
    """

    def __init__(self, message: str, *, guard: str = "checksum") -> None:
        super().__init__(message)
        self.guard = guard


class FaultPlanError(ReproError, ValueError):
    """Raised for malformed fault plans (unknown site, bad counts)."""


class ReliabilityWarning(UserWarning):
    """Structured warning emitted when a layer falls back to the
    reference backend after retries were exhausted."""


#: Reasons an :class:`OverloadError` can carry, and what each means for
#: the caller.  ``queue-full`` / ``admission-timeout`` are raised
#: synchronously from ``submit()``; the rest resolve a request's future
#: after admission.
OVERLOAD_REASONS = (
    "queue-full",          # reject policy: bounded queue is full
    "admission-timeout",   # block policy: queue stayed full past timeout
    "deadline",            # per-request deadline expired before execution
    "shed",                # shed-oldest policy evicted this request
    "cancelled",           # client cancelled the request before execution
    "closed",              # request raced a server shutdown
)


class OverloadError(ReproError, RuntimeError):
    """A request was refused or shed by serving overload protection.

    Structured so clients can react per ``reason`` (retry with backoff
    on ``queue-full``, give up on ``deadline``, ...).  ``queue_depth``
    is the bounded queue's occupancy when the decision was taken;
    ``deadline_ms`` echoes the request's deadline when the reason is
    deadline expiry.
    """

    def __init__(self, message: str, *, reason: str,
                 queue_depth: int | None = None,
                 deadline_ms: float | None = None) -> None:
        if reason not in OVERLOAD_REASONS:
            raise ValueError(
                f"unknown overload reason {reason!r}; choose from "
                f"{OVERLOAD_REASONS}")
        super().__init__(message)
        self.reason = reason
        self.queue_depth = queue_depth
        self.deadline_ms = deadline_ms


__all__ = [
    "ReproError",
    "GuardError",
    "FaultPlanError",
    "OverloadError",
    "OVERLOAD_REASONS",
    "ReliabilityWarning",
]
