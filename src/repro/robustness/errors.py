"""Errors and warnings raised by the reliability layer.

All errors derive from :class:`repro.core.errors.ReproError`, the shared
base the rest of the stack adopted, so one ``except ReproError`` catches
datapath, graph and guard failures alike.
"""

from __future__ import annotations

from repro.core.errors import ReproError


class GuardError(ReproError, RuntimeError):
    """An integrity guard tripped: the data it protects is corrupted.

    ``guard`` names the mechanism that fired (``"checksum"``, ``"range"``,
    ``"finite"`` or ``"weight"``) so recovery policies and campaign
    reports can attribute detections.
    """

    def __init__(self, message: str, *, guard: str = "checksum") -> None:
        super().__init__(message)
        self.guard = guard


class FaultPlanError(ReproError, ValueError):
    """Raised for malformed fault plans (unknown site, bad counts)."""


class ReliabilityWarning(UserWarning):
    """Structured warning emitted when a layer falls back to the
    reference backend after retries were exhausted."""


__all__ = [
    "ReproError",
    "GuardError",
    "FaultPlanError",
    "ReliabilityWarning",
]
