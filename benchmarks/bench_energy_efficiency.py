"""Section IV-C: energy efficiency of the six CNNs.

Regenerates the per-network GOPS/W ranges from a8-w8 to a2-w2 (paper:
477.5 GOPS/W on MobileNet-V1 up to 1.3 TOPS/W on AlexNet/VGG/
EfficientNet), and the u-engine's 2.3% SoC power overhead.
"""

import pytest

from repro.eval.experiments import energy_efficiency_ranges
from repro.sim.area import UENGINE_POWER_OVERHEAD

#: Paper Section IV-C ranges (GOPS/W).
PAPER_RANGES = {
    "alexnet": (522.1, 1300.0),
    "vgg16": (524.3, 1300.0),
    "resnet18": (509.0, 1200.0),
    "mobilenet_v1": (477.5, 944.1),
    "regnet_x_400mf": (503.3, 982.0),
    "efficientnet_b0": (509.7, 1300.0),
}


@pytest.fixture(scope="module")
def ranges():
    return energy_efficiency_ranges()


def test_energy_efficiency(benchmark, save_result):
    results = benchmark(energy_efficiency_ranges)
    lines = ["Energy efficiency a8-w8 -> a2-w2 (paper ranges in parens)"]
    for r in results:
        lo, hi = PAPER_RANGES[r.network]
        lines.append(
            f"  {r.network}: {r.gops_per_watt_lo:.0f} - "
            f"{r.gops_per_watt_hi:.0f} GOPS/W  (paper {lo} - {hi})"
        )
    lines.append(f"u-engine SoC power overhead: "
                 f"{UENGINE_POWER_OVERHEAD:.1%} (paper: 2.3%)")
    save_result("energy_efficiency", "\n".join(lines))
    assert len(results) == 6


@pytest.mark.parametrize("network", sorted(PAPER_RANGES))
def test_low_end_near_paper(benchmark, ranges, network):
    got = benchmark(
        lambda: [r for r in ranges if r.network == network][0]
    )
    lo, _ = PAPER_RANGES[network]
    assert got.gops_per_watt_lo == pytest.approx(lo, rel=0.2), network


def test_peak_reaches_1_3_tops_per_watt(benchmark, ranges):
    # Abstract: "up to 1.3 TOPS/W in energy efficiency".
    best = benchmark(lambda: max(r.gops_per_watt_hi for r in ranges))
    assert 1100 < best < 1500


def test_global_band(benchmark, ranges):
    # Abstract band: 477.5 GOPS/W ... 1.3 TOPS/W.
    values = benchmark(lambda: [
        v for r in ranges
        for v in (r.gops_per_watt_lo, r.gops_per_watt_hi)
    ])
    assert min(values) > 400
    assert max(values) < 1500
