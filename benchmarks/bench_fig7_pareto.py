"""Figure 7: performance vs accuracy Pareto frontier for the six CNNs.

Regenerates every annotated point (configuration ladder x six networks):
throughput from the Mix-GEMM performance model, TOP-1 from the digitized
QAT registry, baseline from the OpenBLAS-on-U740 model.  The paper's
claims checked here: Mix-GEMM beats FP32 by 5.3x-15.1x, and a5-w5 gives
~60% more throughput than a8-w8 at near-identical accuracy.
"""

import pytest

from repro.eval.figures import figure7, figure7_speedup_ranges
from repro.eval.reporting import render_figure7
from repro.eval.workloads import NETWORK_ORDER


@pytest.fixture(scope="module")
def fig7_points():
    return figure7()


def test_figure7_all_networks(benchmark, save_result):
    points = benchmark(figure7)
    ranges = figure7_speedup_ranges(points)
    lines = [
        "Figure 7: accuracy vs throughput (FP32 baseline: OpenBLAS/U740)",
        render_figure7(points),
        "",
        "speed-up over FP32 per network (paper: 5.3x-15.1x):",
    ]
    lines += [
        f"  {name}: {lo:.1f}x - {hi:.1f}x"
        for name, (lo, hi) in sorted(ranges.items())
    ]
    save_result("figure7", "\n".join(lines))
    assert {p.network for p in points} == set(NETWORK_ORDER)


def test_figure7_speedup_band(benchmark, fig7_points):
    ranges = benchmark(figure7_speedup_ranges, fig7_points)
    for name, (lo, hi) in ranges.items():
        assert lo > 4.0, name
        assert hi < 19.0, name


def test_figure7_frontier_nonempty(benchmark, fig7_points):
    def frontiers():
        return {
            name: [p.config for p in fig7_points
                   if p.network == name and p.on_frontier]
            for name in NETWORK_ORDER
        }

    result = benchmark(frontiers)
    for name, configs in result.items():
        assert configs, name
        # The fastest config is always non-dominated on throughput.
        assert "a2-w2" in configs, name
