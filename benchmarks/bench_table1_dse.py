"""Table I: the design-space-exploration optimum.

Re-runs the analytical blocking derivation (Low et al.) and the kua/kub
selection on the paper's SoC; the outcome must land on the published
mc = nc = kc = 256, mr = nr = 4, kua = kub = 4, AccMem = 16, SB = 16.
"""

from repro.eval.reporting import render_table
from repro.eval.tables import table1
from repro.sim.dse import optimal_blocking
from repro.sim.params import PAPER_SOC, SMALL_CACHE_SOC


def test_table1_dse(benchmark, save_result):
    t1 = benchmark(table1)
    headers = ["mc", "nc", "kc", "mr", "nr", "kua", "kub", "AM", "SB"]
    row = [t1.mc, t1.nc, t1.kc, t1.mr, t1.nr, t1.kua, t1.kub,
           t1.accmem, t1.source_buffers]
    text = "\n".join([
        "Table I: Mix-GEMM optimal parameters from the DSE",
        render_table(headers, [row]),
        "",
        "paper: 256 256 256 4 4 4 4 16 16",
    ])
    save_result("table1", text)
    assert row == [256, 256, 256, 4, 4, 4, 4, 16, 16]


def test_blocking_adapts_to_small_caches(benchmark):
    dse = benchmark(optimal_blocking, SMALL_CACHE_SOC)
    assert dse.blocking.kc < 256
    assert dse.blocking.mc < 256


def test_blocking_budget_feasible(benchmark):
    dse = benchmark(optimal_blocking, PAPER_SOC)
    assert dse.l1_bytes_used <= PAPER_SOC.l1_bytes / 2
    assert dse.l2_bytes_used <= PAPER_SOC.l2_bytes
