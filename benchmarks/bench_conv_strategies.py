"""Ablation: convolution lowering strategies (paper Section II-A).

The paper surveys direct, fast (FFT/Winograd) and GEMM-based convolution
and picks GEMM.  This ablation makes the trade-offs concrete:

* Winograd's 2.25x multiplication saving on 3x3 kernels (real, measured
  against our implementation);
* its dynamic-range expansion, which erases the narrow-precision benefit
  Mix-GEMM exploits (the ref [49] caveat);
* the explicit-im2row duplication factor that implicit schemes remove.
"""

import numpy as np
import pytest

from repro.models.inventory import get_network
from repro.nn.im2col import im2row_duplication_factor
from repro.nn.winograd import (
    multiplication_counts,
    winograd_conv2d,
    winograd_range_expansion,
)


def test_conv_strategy_tradeoffs(benchmark, save_result):
    def analyze():
        lines = ["Convolution strategy trade-offs (Section II-A):"]
        # Winograd's multiplication saving on ResNet-18's 3x3 layers.
        net = get_network("resnet18")
        three_by_three = [l for l in net.conv_layers
                          if l.kernel == 3 and l.groups == 1]
        direct = wino = 0
        for layer in three_by_three:
            d, w = multiplication_counts(
                layer.out_size, layer.out_size,
                layer.in_channels, layer.out_channels,
            )
            direct += d
            wino += w
        lines.append(f"  Winograd F(2x2,3x3) on ResNet-18 3x3 layers: "
                     f"{direct / wino:.2f}x fewer multiplications")
        # ...but the range expansion at narrow precision:
        for bits in (8, 4, 2):
            exp = winograd_range_expansion(bits)
            lines.append(
                f"  {bits}-bit data -> transformed inputs need "
                f"{exp['effective_input_bits']:.0f} bits "
                f"(+{exp['extra_input_bits']:.0f})"
            )
        # im2row duplication (what implicit im2col schemes remove):
        layer = [l for l in get_network("vgg16").conv_layers][2]
        dup = im2row_duplication_factor(layer.geometry)
        lines.append(f"  explicit im2row duplication on {layer.name}: "
                     f"{dup:.1f}x the input volume")
        return lines

    lines = benchmark(analyze)
    save_result("conv_strategies", "\n".join(lines))
    assert any("2.25x" in line or "fewer" in line for line in lines)


def test_winograd_numerically_correct(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, 4, 10, 10))
    w = rng.normal(size=(8, 4, 3, 3))

    result = benchmark(winograd_conv2d, x, w)
    # Spot-check one output against the direct definition.
    patch = x[0, :, 0:3, 0:3]
    assert result[0, 0, 0, 0] == pytest.approx(
        float((patch * w[0]).sum())
    )


def test_range_expansion_kills_2bit(benchmark):
    exp = benchmark(winograd_range_expansion, 2)
    # 2-bit operands need 4-bit transformed storage: the compression
    # Mix-GEMM banks on is gone -- the paper's reason to stay with GEMM.
    assert exp["effective_input_bits"] >= 4.0
