"""Figure 6: Mix-GEMM speed-up over BLIS DGEMM on square matrices.

Regenerates the 12 speed-up series (64..2048 elements per dimension) and
the in-text steady-state numbers of Section IV-B: a8-w8 at ~10.2x (the
8x compression bound beaten thanks to the AccMem), a4-w4 at ~16x, a2-w2
at ~27.2x (32x bound minus the u-vector drain penalty), and the int8
BLIS variant at only ~2x.
"""

import pytest

from repro.eval.figures import (
    figure6,
    figure6_steady_state,
    int8_blis_speedup,
)
from repro.eval.reporting import render_figure6


@pytest.fixture(scope="module")
def fig6_points():
    return figure6()


def test_figure6_sweep(benchmark, save_result):
    points = benchmark(figure6)
    text = render_figure6(points)
    steady = figure6_steady_state(points)
    lines = [
        "Figure 6: speed-up of Mix-GEMM over the BLIS DGEMM baseline",
        text,
        "",
        "steady state (largest size):",
    ]
    lines += [f"  {cfg}: {s:.1f}x" for cfg, s in steady.items()]
    lines.append(f"  int8 BLIS (paper ~2.5x): {int8_blis_speedup():.2f}x")
    save_result("figure6", "\n".join(lines))
    assert steady["a2-w2"] == max(steady.values())


def test_figure6_a8w8_anchor(benchmark, fig6_points):
    steady = benchmark(figure6_steady_state, fig6_points)
    assert steady["a8-w8"] == pytest.approx(10.2, rel=0.12)


def test_figure6_a2w2_anchor(benchmark, fig6_points):
    steady = benchmark(figure6_steady_state, fig6_points)
    assert steady["a2-w2"] == pytest.approx(27.2, rel=0.12)


def test_figure6_scaling_with_narrowing(benchmark, fig6_points):
    def uniform_ladder():
        steady = figure6_steady_state(fig6_points)
        return [steady[c] for c in ("a8-w8", "a6-w6", "a4-w4",
                                    "a3-w3", "a2-w2")]

    ladder = benchmark(uniform_ladder)
    assert ladder == sorted(ladder)
