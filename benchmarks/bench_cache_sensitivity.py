"""Section IV-B cache exploration: smaller L1/L2 vs performance and area.

The paper reports average penalties of 5.2% (L1 64->16 KB), 7%
(L2 512->64 KB) and 11.8% (both), with a 53% SoC-area saving for the
small configuration.  The study re-blocks Mix-GEMM for each cache size
(via the analytical DSE) and measures the slowdown over the Figure 6
workload.
"""

import pytest

from repro.eval.experiments import cache_sensitivity_study
from repro.sim.area import SocArea


@pytest.fixture(scope="module")
def study():
    return cache_sensitivity_study()


def test_cache_sensitivity(benchmark, save_result):
    results = benchmark(cache_sensitivity_study)
    lines = ["Cache sensitivity (paper: 5.2% / 7% / 11.8% penalties, "
             "53% area saving for 16KB/64KB)"]
    for r in results:
        lines.append(
            f"  L1={r.l1_kb}KB L2={r.l2_kb}KB: penalty {r.penalty:+.1%}, "
            f"SoC area saving {r.area_saving:.1%}"
        )
    save_result("cache_sensitivity", "\n".join(lines))
    assert all(r.penalty >= 0 for r in results)


def test_penalties_modest(benchmark, study):
    # The paper's central claim: Mix-GEMM keeps high performance even on
    # much smaller caches.
    worst = benchmark(lambda: max(r.penalty for r in study))
    assert worst < 0.30


def test_small_config_area_saving(benchmark, study):
    small = benchmark(
        lambda: [r for r in study if (r.l1_kb, r.l2_kb) == (16, 64)][0]
    )
    assert small.area_saving == pytest.approx(0.53, abs=0.06)


def test_small_caches_still_fast(benchmark):
    """Absolute check: the 16/64KB SoC still runs ResNet-18 above 4 GOPS
    at a8-w8 (the paper's point that the area-reduced SoC stays usable)."""
    from repro.core.config import MixGemmConfig
    from repro.models.inventory import get_network
    from repro.sim.params import SMALL_CACHE_SOC
    from repro.sim.soc import MixGemmSoc

    soc = MixGemmSoc(SMALL_CACHE_SOC)

    def run():
        return soc.network(get_network("resnet18"),
                           MixGemmConfig(bw_a=8, bw_b=8)).gops

    gops = benchmark(run)
    assert gops > 3.5
