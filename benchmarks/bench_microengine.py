"""Ablation: u-engine throughput by configuration and design feature.

Not a single paper table, but the design-choice ablations DESIGN.md calls
out: the per-configuration MAC/cycle ladder implied by binary
segmentation (3 -> 7 peak, with DSU boundary losses), the AccMem's
benefit (removing per-element C read-modify-write from the issue
stream), and the functional simulator's raw speed (for harness sizing).
"""

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.gemm import KernelCosts, MixGemm
from repro.core.microengine import effective_macs_per_cycle
from repro.sim.perf import MixGemmPerfModel


def test_mac_per_cycle_ladder(benchmark, save_result):
    def ladder():
        out = {}
        for bw in (8, 6, 4, 3, 2):
            cfg = MixGemmConfig(bw_a=bw, bw_b=bw)
            out[bw] = (cfg.macs_per_cycle,
                       effective_macs_per_cycle(cfg))
        return out

    result = benchmark(ladder)
    save_result("microengine_ladder", "\n".join(
        ["u-engine throughput per configuration (peak / effective):"]
        + [f"  a{b}-w{b}: {peak} / {eff:.2f} MAC/cycle"
           for b, (peak, eff) in result.items()]
    ))
    peaks = [p for p, _ in result.values()]
    assert peaks == sorted(peaks)
    assert peaks[0] == 3 and peaks[-1] == 7


def test_accmem_ablation(benchmark, save_result):
    """Without the AccMem, every accumulation would round-trip through
    the core (modelled as extra C-update issue work); the paper credits
    the AccMem for beating the 8x bound at a8-w8."""
    mix = MixGemmPerfModel()

    def with_and_without():
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        base = mix.gemm(1024, 1024, 1024, cfg)
        # No AccMem: one get+update per output per k-GROUP, not k-block.
        groups = 1024 // cfg.layout.group_elements
        k_blocks_equiv = groups
        penalty = (base.collection_cycles * k_blocks_equiv
                   / max(1, (1024 // (cfg.blocking.kc * 8))))
        no_accmem_cycles = (max(base.engine_cycles, base.cpu_cycles)
                            + penalty + base.memory_stall_cycles)
        return base.total_cycles, no_accmem_cycles

    with_acc, without_acc = benchmark(with_and_without)
    save_result("microengine_accmem", "\n".join([
        "AccMem ablation (1024^3 GEMM, a8-w8):",
        f"  with AccMem:    {with_acc / 1e6:.1f}M cycles",
        f"  without AccMem: {without_acc / 1e6:.1f}M cycles",
        f"  benefit: {without_acc / with_acc - 1:.1%}",
    ]))
    assert without_acc > with_acc


def test_functional_simulator_throughput(benchmark):
    """Raw event-driven simulator speed on a small exact GEMM."""
    rng = np.random.default_rng(0)
    cfg = MixGemmConfig(bw_a=8, bw_b=8,
                        blocking=BlockingParams(mc=8, nc=8, kc=64))
    a = rng.integers(-128, 128, size=(8, 64))
    b = rng.integers(-128, 128, size=(64, 8))

    def run():
        return MixGemm(cfg, emulate_datapath=False,
                       costs=KernelCosts()).gemm(a, b)

    result = benchmark(run)
    assert np.array_equal(result.c, a.astype(np.int64) @ b)
