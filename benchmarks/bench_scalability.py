"""Section III-B scalability: multi-core SoCs and wider-SIMD u-engines.

The paper claims Mix-GEMM scales to multi-core hosts (one u-engine per
core, near-single-thread per-core performance) and to SIMD cores (wider
Source Buffers + multiple multipliers).  These ablations quantify both
axes with the composed models.
"""

import pytest

from repro.core.config import MixGemmConfig
from repro.sim.scalability import (
    MultiCorePerfModel,
    WideSimdPerfModel,
    wide_simd_area,
)


def test_multicore_scaling(benchmark, save_result):
    cfg = MixGemmConfig(bw_a=8, bw_b=8)

    def sweep():
        return {
            cores: MultiCorePerfModel(cores).gemm(1024, 1024, 1024, cfg)
            for cores in (1, 2, 4, 8)
        }

    results = benchmark(sweep)
    lines = ["Multi-core scaling (1024^3 GEMM, a8-w8):"]
    for cores, r in results.items():
        lines.append(
            f"  {cores} cores: {r.gops():6.1f} GOPS, speedup "
            f"{r.speedup:.2f}x, efficiency {r.efficiency:.0%}"
        )
    save_result("scalability_multicore", "\n".join(lines))
    assert results[8].speedup > 5.0


def test_wide_simd_scaling(benchmark, save_result):
    cfg = MixGemmConfig(bw_a=2, bw_b=2)

    def sweep():
        out = {}
        for lanes in (1, 2, 4):
            perf = WideSimdPerfModel(lanes).gemm(1024, 1024, 1024, cfg)
            area = wide_simd_area(lanes)
            out[lanes] = (perf.gops, area.area_um2)
        return out

    results = benchmark(sweep)
    lines = ["Wide-SIMD u-engine (1024^3 GEMM, a2-w2):"]
    for lanes, (gops, area) in results.items():
        lines.append(f"  {lanes} lanes: {gops:6.1f} GOPS, "
                     f"{area:8.0f} um2")
    save_result("scalability_simd", "\n".join(lines))
    assert results[4][0] > 2 * results[1][0]


def test_area_per_lane_sublinear(benchmark):
    design = benchmark(wide_simd_area, 4)
    # Shared Control Unit keeps the 4-lane engine under 4x area.
    assert design.area_overhead_vs_baseline < 4.0


def test_multicore_efficiency_claim(benchmark):
    # Paper: per-core performance "close to the single-threaded
    # implementation" at small core counts.
    cfg = MixGemmConfig(bw_a=4, bw_b=4)
    r = benchmark(
        lambda: MultiCorePerfModel(4).gemm(1024, 1024, 1024, cfg)
    )
    assert r.efficiency > 0.75
