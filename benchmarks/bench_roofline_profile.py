"""Architectural analysis: rooflines and per-layer profiles.

Not a paper table, but the analysis Section IV-B's prose performs:
which layers bind on compute vs memory, where each network spends its
time, and how batching amortizes small layers.
"""

import pytest

from repro.core.config import MixGemmConfig
from repro.eval.profiler import profile_network, render_profile
from repro.eval.roofline import (
    analyze_network,
    bound_fractions,
    machine_roofline,
)
from repro.models.inventory import get_network
from repro.sim.perf import MixGemmPerfModel


def test_roofline_by_network(benchmark, save_result):
    cfg = MixGemmConfig(bw_a=8, bw_b=8)

    def sweep():
        out = {}
        for name in ("alexnet", "resnet18", "mobilenet_v1",
                     "efficientnet_b0"):
            points = analyze_network(get_network(name), cfg)
            out[name] = bound_fractions(points)
        return out

    results = benchmark(sweep)
    roof = machine_roofline(cfg)
    lines = [
        f"Roofline @ a8-w8: peak {roof.peak_macs_per_cycle:.2f} "
        f"MAC/cycle, knee at {roof.knee_intensity:.1f} MAC/byte",
    ]
    for name, fractions in results.items():
        lines.append(f"  {name:16s} compute-bound layers: "
                     f"{fractions['compute']:.0%}")
    save_result("roofline", "\n".join(lines))
    assert results["alexnet"]["compute"] > 0.5


def test_hotspot_profiles(benchmark, save_result):
    cfg = MixGemmConfig(bw_a=8, bw_b=8)

    def run():
        return {
            name: profile_network(get_network(name), cfg)
            for name in ("mobilenet_v1", "efficientnet_b0")
        }

    profiles = benchmark(run)
    blocks = [render_profile(p, top=5) for p in profiles.values()]
    save_result("profiles", "\n\n".join(blocks))
    mobilenet = profiles["mobilenet_v1"]
    assert mobilenet.share_by_kind()["pointwise"] > 0.5


def test_batching_amortization(benchmark, save_result):
    perf = MixGemmPerfModel()
    cfg = MixGemmConfig(bw_a=8, bw_b=8)
    net = get_network("efficientnet_b0")

    def sweep():
        return {b: perf.network(net, cfg, batch=b).gops
                for b in (1, 4, 16)}

    gops = benchmark(sweep)
    save_result("batching", "\n".join(
        ["EfficientNet-B0 throughput vs batch (skinny layers amortize):"]
        + [f"  batch {b:2d}: {g:.2f} GOPS" for b, g in gops.items()]
    ))
    assert gops[16] >= gops[1]
