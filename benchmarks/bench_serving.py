"""Wall-clock payoff of compiled plans and batched multi-worker serving.

Two measurements, both of the *simulator/runtime itself* (host seconds),
not the modelled hardware:

1. **Compilation speedup** -- one resnet18-style DAG inference on the
   uncompiled per-call engine versus a compiled
   :class:`~repro.runtime.plan.GraphPlan`, bit-exactness and
   cycle-exactness asserted on every comparison.  The plan hoists
   weight quantization, packing, conv lowering geometry and executor
   construction out of the hot path; the target is what remains.
2. **Worker scaling** -- serving throughput of the batched
   multi-worker runtime (:mod:`repro.runtime.serving`) across worker
   counts (p50/p95/p99 latency and shed rate per row), demonstrating
   that plan replicas behind a shared packing cache turn compilation
   into serving capacity.
3. **Overload behavior** -- the server driven at ~10x its sustained
   capacity under the ``reject`` admission policy with per-request
   deadlines.  The gate checks *graceful* degradation: queue depth
   never exceeds the configured bound, the shed counters are non-zero
   (admission control actually engaged), no future is lost, and the
   p99 latency of admitted requests stays within 2x the deadline.
4. **Process scaling** -- the process-sharded server
   (:mod:`repro.runtime.sharding`) across worker-process counts, every
   row checked bit-exact against the single-worker reference, plus the
   zero-copy plan-memory proof: one shared segment, zero private plan
   bytes per worker, no leaked ``/dev/shm`` entries after teardown.
   Thread workers only overlap inside GIL-releasing numpy sections;
   process workers own whole cores, so this is the study where worker
   counts buy real throughput on multi-core hosts.

Targets (recorded in ``BENCH_serving.json`` at the repo root):

* >= 5x compiled-vs-uncompiled on the resnet18-style graph (full run);
* >= 2x on the CI smoke gate -- deliberately loose so runner noise
  never produces a false alarm; what it catches is compilation
  silently degrading to the per-call path;
* process scaling >= 2.5x at 4 workers (full run, >= 4-core host) and
  >= 1.8x on the CI smoke gate.  The multiplier gates only apply when
  ``os.cpu_count() >= 4`` -- on fewer cores the rows are still
  measured and the exactness/zero-copy/no-leak gates still bind, but a
  scaling multiplier would be measuring the scheduler, not the server.
  Run the scaling study with ``OMP_NUM_THREADS=1`` (and
  ``OPENBLAS_NUM_THREADS=1``): a multi-threaded BLAS already eats the
  spare cores at 1 worker and flattens the apparent scaling.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_serving.py

or ``--smoke`` / ``--mode smoke`` for the CI gate.  Under pytest,
``test_serving_smoke`` runs the gate and writes ``results/serving.txt``
and ``test_scaling_smoke`` runs the process-scaling gate.
"""

import argparse
import json
import os
import pathlib
import time

import numpy as np

from repro.models.builders import build_tiny
from repro.nn.layers import seed_init
from repro.runtime import InferenceEngine, compile_graph, export_model
from repro.runtime.serving import BatchedServer, scaling_sweep
from repro.runtime.sharding import ShardedServer

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_serving.json"
RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "serving.txt"

#: Acceptance thresholds; the smoke gate is the CI-enforced floor.
TARGETS = {"compiled_speedup": 5.0, "smoke_gate": 2.0,
           "process_scaling": 2.5, "process_scaling_smoke": 1.8,
           "plan_private_fraction": 0.10}

#: Scaling multipliers only bind on hosts with at least this many
#: cores; below it there is no parallel capacity to measure.
MIN_SCALING_CPUS = 4

#: (label, batch, spatial size) shapes for the compilation comparison.
FULL_SHAPES = [("serve-1x12", 1, 12), ("batch-2x12", 2, 12),
               ("batch-4x16", 4, 16)]
SMOKE_SHAPES = [("smoke-1x12", 1, 12)]


def _resnet_graph(arch: str = "resnet18"):
    seed_init(13)
    model = build_tiny(arch, act_bits=8, weight_bits=8)
    model.eval()
    return export_model(model, name=arch)


def _best_of(fn, x, repeats: int) -> float:
    fn(x)  # warm caches, scratch buffers and executor bindings
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(x)
        best = min(best, time.perf_counter() - t0)
    return best


def compiled_speedup_study(graph, shapes, *, repeats: int = 20,
                           seed: int = 0) -> list[dict]:
    """Uncompiled engine vs compiled plan; exactness asserted per row."""
    rng = np.random.default_rng(seed)
    engine = InferenceEngine(graph, backend="mixgemm")
    plan = compile_graph(graph, backend="mixgemm")
    rows = []
    for name, batch, size in shapes:
        x = rng.standard_normal((batch, 1, size, size))
        ref = engine.run(x)
        got = plan.run(x)
        bit_exact = bool(np.array_equal(ref.output, got.output))
        cycles_equal = ref.total_cycles == got.total_cycles
        uncompiled = _best_of(engine.run, x, repeats)
        compiled = _best_of(plan.run, x, repeats)
        rows.append({
            "name": name, "batch": batch, "size": size,
            "uncompiled_seconds": uncompiled,
            "compiled_seconds": compiled,
            "speedup": uncompiled / compiled,
            "cycles": got.total_cycles,
            "bit_exact": bit_exact,
            "cycles_equal": cycles_equal,
        })
    return rows


def worker_scaling_study(graph, *, requests: int = 64, size: int = 12,
                         seed: int = 1,
                         worker_counts=(1, 2, 4)) -> list[dict]:
    """Serving throughput rows across worker-pool widths."""
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal((1, size, size))
              for _ in range(requests)]
    return scaling_sweep(graph, inputs, worker_counts=worker_counts,
                         max_batch=8, max_wait_ms=2.0,
                         backend="mixgemm")


def _shm_entries() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


def process_scaling_study(graph, *, requests: int = 64, size: int = 12,
                          seed: int = 3,
                          worker_counts=(1, 2, 4)) -> dict:
    """Process-sharded throughput rows + the zero-copy memory proof.

    Every row is served from the same input set; outputs are checked
    bit-exact against the single-worker reference row.  Per row the
    dispatcher's :meth:`ShardedServer.plan_memory_report` records the
    segment size and each worker's shared/private plan-byte split --
    the deterministic one-copy proof (address-range accounting, immune
    to allocator noise) -- alongside per-worker RSS for context.
    """
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal((1, size, size))
              for _ in range(requests)]
    shm_before = _shm_entries()
    reference = None
    rows = []
    for workers in worker_counts:
        with ShardedServer(graph, workers=workers, max_batch=8,
                           max_wait_ms=2.0,
                           backend="mixgemm") as server:
            report = server.run_requests(inputs)
            memory = server.plan_memory_report()
        if reference is None:
            reference = report.outputs
        s = report.stats
        worker_rows = memory["workers"]
        rows.append({
            "workers": workers,
            "requests": s.requests,
            "served": s.served,
            "lost_futures": s.requests - s.served - s.shed_total,
            "throughput_rps": s.throughput_rps,
            "latency_p50_ms": s.latency_p50_ms,
            "latency_p95_ms": s.latency_p95_ms,
            "latency_p99_ms": s.latency_p99_ms,
            "mean_batch_size": s.mean_batch_size,
            "bit_exact_vs_single_worker": bool(all(
                np.array_equal(a, b)
                for a, b in zip(reference, report.outputs))),
            "segment_bytes": memory["segment_bytes"],
            "plan_bytes_total": sum(w["plan_bytes_total"]
                                    for w in worker_rows),
            "plan_bytes_private_max": max(
                (w["plan_bytes_private"] for w in worker_rows),
                default=0),
            "worker_rss_bytes": [w["rss_bytes"] for w in worker_rows],
            "dispatcher_rss_bytes": memory["dispatcher_rss_bytes"],
        })
    return {
        "worker_counts": list(worker_counts),
        "rows": rows,
        "leaked_segments": sorted(_shm_entries() - shm_before),
    }


def check_process_scaling_gate(ps: dict, *, host_cpus: int,
                               min_scaling: float) -> list:
    """Gate the process-scaling study (empty list = passes).

    Exactness, zero lost futures, the zero-copy bound and segment
    hygiene bind unconditionally; the throughput multiplier only binds
    on hosts with >= MIN_SCALING_CPUS cores.
    """
    problems = []
    by_workers = {r["workers"]: r for r in ps["rows"]}
    for r in ps["rows"]:
        if not r["bit_exact_vs_single_worker"]:
            problems.append(
                f"{r['workers']}-worker outputs diverge from the "
                f"single-worker reference")
        if r["lost_futures"] != 0:
            problems.append(
                f"{r['lost_futures']} futures lost at "
                f"{r['workers']} workers")
        bound = TARGETS["plan_private_fraction"] * r["segment_bytes"]
        if r["plan_bytes_private_max"] > bound:
            problems.append(
                f"worker holds {r['plan_bytes_private_max']} private "
                f"plan bytes at {r['workers']} workers (> "
                f"{TARGETS['plan_private_fraction']:.0%} of the "
                f"{r['segment_bytes']}-byte segment)")
    if ps["leaked_segments"]:
        problems.append(
            f"leaked /dev/shm segments after teardown: "
            f"{ps['leaked_segments']}")
    lo = by_workers.get(1)
    hi = by_workers.get(max(by_workers))
    if lo is None or hi is None or hi["workers"] == 1:
        problems.append("process scaling needs a 1-worker and a "
                        "multi-worker row")
    elif host_cpus >= MIN_SCALING_CPUS:
        ratio = hi["throughput_rps"] / lo["throughput_rps"]
        if ratio < min_scaling:
            problems.append(
                f"process scaling {ratio:.2f}x at {hi['workers']} "
                f"workers below the {min_scaling:.1f}x gate")
    return problems


def overload_study(graph, *, requests: int = 160, size: int = 12,
                   seed: int = 2, workers: int = 2,
                   queue_capacity: int = 8,
                   deadline_ms: float = 500.0) -> dict:
    """Drive the server far past capacity; record how it degrades.

    ``requests`` is sized ~10x what ``workers * queue_capacity`` can
    hold, submitted as one burst under the ``reject`` policy, so
    admission control *must* engage for the run to stay bounded.
    """
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal((1, size, size))
              for _ in range(requests)]
    with BatchedServer(graph, workers=workers, max_batch=4,
                       max_wait_ms=1.0, queue_capacity=queue_capacity,
                       admission="reject",
                       backend="mixgemm") as server:
        report = server.run_requests(inputs, deadline_ms=deadline_ms,
                                     tolerate_overload=True)
    s = report.stats
    # "Zero lost futures": every submitted slot resolved to exactly one
    # of a response or a structured overload error.
    resolved = sum((r is not None) != (e is not None)
                   for r, e in zip(report.responses, report.errors))
    return {
        "requests": requests, "workers": workers,
        "queue_capacity": queue_capacity, "deadline_ms": deadline_ms,
        "admission": "reject",
        "served": s.served, "shed_total": s.shed_total,
        "shed_rate": s.shed_rate, "rejected": s.rejected,
        "shed_deadline": s.shed_deadline,
        "max_queue_depth": s.max_queue_depth,
        "latency_p99_ms": s.latency_p99_ms,
        "resolved": resolved,
        "lost_futures": requests - resolved,
    }


def run_suite(*, repeats: int = 20, requests: int = 64,
              smoke: bool = False) -> dict:
    """Assemble the full payload written to ``BENCH_serving.json``."""
    graph = _resnet_graph()
    shapes = SMOKE_SHAPES if smoke else FULL_SHAPES
    compiled = compiled_speedup_study(graph, shapes, repeats=repeats)
    thread_counts = (1, 2) if smoke else (1, 2, 4)
    process_counts = (1, 4) if smoke else (1, 2, 4)
    if smoke:
        scaling = worker_scaling_study(graph, requests=requests // 2,
                                       worker_counts=thread_counts)
        processes = process_scaling_study(graph,
                                          requests=requests,
                                          worker_counts=process_counts)
        overload = overload_study(graph, requests=80, workers=1,
                                  queue_capacity=4)
    else:
        scaling = worker_scaling_study(graph, requests=requests,
                                       worker_counts=thread_counts)
        processes = process_scaling_study(graph,
                                          requests=2 * requests,
                                          worker_counts=process_counts)
        overload = overload_study(graph)
    headline = compiled[0]
    return {
        "generated_by": "benchmarks/bench_serving.py",
        "mode": "smoke" if smoke else "full",
        "arch": "resnet18",
        # Worker scaling is only meaningful on multi-core hosts: the
        # thread pool overlaps GIL-releasing numpy kernels and the
        # process shards own whole cores, but a single-CPU machine
        # measures pure dispatch overhead either way.
        "host_cpus": os.cpu_count(),
        "worker_counts": {"threads": list(thread_counts),
                          "processes": list(process_counts)},
        "targets": TARGETS,
        "compiled": compiled,
        "worker_scaling": scaling,
        "process_scaling": processes,
        "overload": overload,
        "headline": headline,
        "all_exact": all(r["bit_exact"] and r["cycles_equal"]
                         for r in compiled),
        "headline_speedup": headline["speedup"],
    }


def render(payload: dict) -> str:
    lines = [
        "Runtime wall-clock: compiled plans + batched serving "
        f"({payload['arch']})",
        f"(mode: {payload['mode']}; every row bit-exact AND "
        f"cycle-exact: {payload['all_exact']})",
        "",
        f"{'shape':>12} {'uncompiled s':>13} {'compiled s':>11} "
        f"{'speedup':>8}",
    ]
    for r in payload["compiled"]:
        lines.append(
            f"{r['name']:>12} {r['uncompiled_seconds']:13.5f} "
            f"{r['compiled_seconds']:11.5f} {r['speedup']:7.1f}x")
    lines += [
        "",
        f"{'workers':>8} {'req/s':>9} {'p50 ms':>8} {'p95 ms':>8} "
        f"{'p99 ms':>8} {'shed':>6} {'mean batch':>11}",
    ]
    for r in payload["worker_scaling"]:
        lines.append(
            f"{r['workers']:>8} {r['throughput_rps']:9.0f} "
            f"{r['latency_p50_ms']:8.2f} {r['latency_p95_ms']:8.2f} "
            f"{r['latency_p99_ms']:8.2f} {r['shed_rate']:6.1%} "
            f"{r['mean_batch_size']:11.2f}")
    ps = payload["process_scaling"]
    lines += [
        "",
        f"{'procs':>8} {'req/s':>9} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'exact':>6} {'segment B':>10} {'private B':>10}",
    ]
    for r in ps["rows"]:
        lines.append(
            f"{r['workers']:>8} {r['throughput_rps']:9.0f} "
            f"{r['latency_p50_ms']:8.2f} {r['latency_p99_ms']:8.2f} "
            f"{str(r['bit_exact_vs_single_worker']):>6} "
            f"{r['segment_bytes']:>10} "
            f"{r['plan_bytes_private_max']:>10}")
    lines.append(
        f"(process rows: one shared plan segment, zero private plan "
        f"bytes per worker is the zero-copy proof; leaked segments: "
        f"{ps['leaked_segments'] or 'none'})")
    o = payload["overload"]
    lines += [
        "",
        f"overload @ ~10x capacity ({o['admission']}, queue "
        f"{o['queue_capacity']}, deadline {o['deadline_ms']:.0f} ms): "
        f"served {o['served']}/{o['requests']}, shed {o['shed_total']} "
        f"({o['shed_rate']:.0%}), max depth {o['max_queue_depth']}, "
        f"admitted p99 {o['latency_p99_ms']:.1f} ms, lost futures "
        f"{o['lost_futures']}",
    ]
    if payload["host_cpus"] == 1:
        lines.append(
            "(single-CPU host: worker rows measure batching overhead, "
            "not parallel speedup)")
    lines.append(
        f"\nheadline {payload['headline']['name']}: "
        f"{payload['headline_speedup']:.1f}x compiled vs uncompiled "
        f"(target >= {payload['targets']['compiled_speedup']:.0f}x full, "
        f">= {payload['targets']['smoke_gate']:.0f}x smoke gate)")
    return "\n".join(lines)


def write_artifacts(payload: dict) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(render(payload) + "\n")


def check_gate(payload: dict, min_speedup: float) -> list:
    """Return the violations (empty list = gate passes)."""
    problems = []
    if not payload["all_exact"]:
        problems.append("compiled plan is not bit-/cycle-exact")
    if payload["headline_speedup"] < min_speedup:
        problems.append(
            f"compiled speedup {payload['headline_speedup']:.2f}x below "
            f"the {min_speedup:.1f}x gate")
    if not payload["worker_scaling"]:
        problems.append("no worker-scaling rows measured")
    scaling_floor = (TARGETS["process_scaling_smoke"]
                     if payload["mode"] == "smoke"
                     else TARGETS["process_scaling"])
    problems.extend(check_process_scaling_gate(
        payload["process_scaling"], host_cpus=payload["host_cpus"],
        min_scaling=scaling_floor))
    problems.extend(check_overload_gate(payload["overload"]))
    return problems


def check_overload_gate(o: dict) -> list:
    """Graceful-degradation gate for the ~10x-capacity overload run."""
    problems = []
    if o["lost_futures"] != 0:
        problems.append(
            f"{o['lost_futures']} futures lost under overload")
    if o["shed_total"] == 0:
        problems.append(
            "overload run shed nothing: admission control never "
            "engaged at 10x capacity")
    if o["max_queue_depth"] > o["queue_capacity"]:
        problems.append(
            f"queue depth {o['max_queue_depth']} exceeded the "
            f"configured bound {o['queue_capacity']}")
    if o["served"] and o["latency_p99_ms"] > 2 * o["deadline_ms"]:
        problems.append(
            f"admitted p99 {o['latency_p99_ms']:.1f} ms exceeds 2x "
            f"the {o['deadline_ms']:.0f} ms deadline")
    return problems


# -- pytest entry point (CI serving-smoke job) --------------------------------


def test_serving_smoke(save_result):
    payload = run_suite(smoke=True, repeats=10, requests=32)
    save_result("serving", render(payload))
    assert check_gate(payload, TARGETS["smoke_gate"]) == []


def test_scaling_smoke(save_result):
    """CI scaling-smoke gate for the process-sharded server.

    Bit-exactness vs the single-worker reference, zero lost futures,
    the zero-copy plan-memory bound and a clean /dev/shm delta bind on
    every host; the throughput(4) >= 1.8x throughput(1) multiplier
    binds when the runner has >= MIN_SCALING_CPUS cores.
    """
    graph = _resnet_graph()
    ps = process_scaling_study(graph, requests=48, worker_counts=(1, 4))
    save_result("scaling", json.dumps(ps, indent=2))
    assert check_process_scaling_gate(
        ps, host_cpus=os.cpu_count() or 1,
        min_scaling=TARGETS["process_scaling_smoke"]) == []


def test_overload_smoke(save_result):
    """CI overload-smoke gate: ~10x capacity must degrade gracefully
    (bounded queue depth, non-zero shed counters, zero lost futures)."""
    graph = _resnet_graph()
    o = overload_study(graph, requests=120, workers=2, queue_capacity=6)
    save_result("overload", json.dumps(o, indent=2))
    assert check_overload_gate(o) == []


# -- standalone entry point ---------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one small shape + regression gate (CI)")
    parser.add_argument("--mode", choices=("smoke", "full"),
                        default=None,
                        help="alias for --smoke / the full sweep")
    parser.add_argument("--repeats", type=int, default=20,
                        help="take the best of N timings per row")
    parser.add_argument("--requests", type=int, default=64,
                        help="requests per worker-scaling row")
    parser.add_argument("--min-speedup", type=float,
                        default=TARGETS["smoke_gate"],
                        help="fail below this headline compiled speedup")
    args = parser.parse_args(argv)
    smoke = args.smoke or args.mode == "smoke"

    payload = run_suite(repeats=args.repeats, requests=args.requests,
                        smoke=smoke)
    write_artifacts(payload)
    print(render(payload))
    print(f"\nwrote {JSON_PATH} and {RESULTS_PATH}")
    problems = check_gate(payload, args.min_speedup)
    for problem in problems:
        print(f"GATE FAILURE: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
