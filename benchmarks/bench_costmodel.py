"""Closed-form cost model: predicted vs event-engine measured cycles.

Two studies of the calibrated analytic cost model
(:mod:`repro.analysis.cost`):

1. **Differential accuracy** -- for a sweep of bitwidth pairs x
   blocking points x GEMM shapes, compare
   :func:`repro.analysis.cost.predict_gemm` (closed form, no engine
   execution after the one-off per-bitwidth calibration) against the
   cycle-faithful event engine running the same GEMM.  The gate is the
   tentpole's accuracy bound: **median error < 1%, max error < 5%**.
   Smoke mode sweeps a representative subset; full mode covers every
   2..8-bit pair.
2. **Analytic prefilter campaign** -- tune the same graph twice into
   fresh caches, exhaustively and with ``analytic_prefilter=True``, and
   require (a) identical winners per layer and (b) the prefiltered
   campaign wall-clock-times at most ~half of the scored candidate
   space.  Smoke mode uses the shipped demo CNN; full mode also runs
   the tiny-resnet18 campaign.

Targets (recorded in ``BENCH_costmodel.json`` at the repo root):

* differential: median < 1%, max < 5% across the sweep;
* prefilter: winners identical to the exhaustive sweep, timed
  fraction <= 0.55 of the scored space (0.5 plus small-space slack).

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_costmodel.py

or ``--smoke`` for the CI gate.  Under pytest, ``test_costmodel_smoke``
runs the gate and writes ``results/costmodel.txt``.
"""

import argparse
import json
import pathlib
import statistics
import tempfile
import time

import numpy as np

from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.gemm import MixGemm
from repro.robustness.faults import demo_graph, demo_input
from repro.tuning import TuneCache, tune_graph

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_costmodel.json"
RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "costmodel.txt"

TARGETS = {
    "median_error_pct": 1.0,
    "max_error_pct": 5.0,
    "max_timed_fraction": 0.55,
}

#: Representative subset for the CI smoke gate (symmetric, asymmetric,
#: and the extreme pairs).
SMOKE_BITWIDTHS = [(8, 8), (8, 4), (6, 4), (5, 3), (4, 4), (2, 2)]

#: Differential-study GEMM shapes (m, n, k): one tile-aligned, one with
#: ragged edge tiles, one deep-K that crosses kc-block boundaries.
SHAPES = [(16, 16, 96), (12, 8, 128), (8, 8, 520)]

#: Blocking points for the differential sweep: kc is the axis that
#: moves the kc-block structure; mc/nc ride along once.
BLOCKINGS = [BlockingParams(mc=16, nc=16, kc=kc) for kc in (8, 64, 256)]


def _full_bitwidths():
    return [(a, w) for a in range(2, 9) for w in range(2, 9)]


def differential_study(bitwidths, *, shapes=SHAPES,
                       blockings=BLOCKINGS, seed=0) -> dict:
    """Predicted vs event-measured cycles across the sweep."""
    from repro.analysis.cost import predict_gemm

    rng = np.random.default_rng(seed)
    rows = []
    for bw_a, bw_b in bitwidths:
        for blocking in blockings:
            for m, n, k in shapes:
                cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b,
                                    blocking=blocking)
                a = rng.integers(-(1 << (bw_a - 1)), 1 << (bw_a - 1),
                                 size=(m, k))
                b = rng.integers(-(1 << (bw_b - 1)), 1 << (bw_b - 1),
                                 size=(k, n))
                measured = MixGemm(cfg, emulate_datapath=False,
                                   backend="event").gemm(a, b).cycles
                predicted = predict_gemm(cfg, None, m, n, k).cycles
                err = abs(predicted - measured) / max(measured, 1) * 100
                rows.append({
                    "config": cfg.name, "kc": blocking.kc,
                    "m": m, "n": n, "k": k,
                    "measured": int(measured),
                    "predicted": int(predicted),
                    "error_pct": err,
                })
    errors = [r["error_pct"] for r in rows]
    return {
        "points": len(rows),
        "median_error_pct": statistics.median(errors),
        "max_error_pct": max(errors),
        "exact_points": sum(1 for e in errors if e == 0.0),
        "rows": rows,
    }


def _resnet_graph(arch: str = "resnet18"):
    from repro.models.builders import build_tiny
    from repro.nn.layers import seed_init
    from repro.runtime import export_model

    seed_init(13)
    model = build_tiny(arch, act_bits=8, weight_bits=8)
    model.eval()
    return export_model(model, name=arch)


def prefilter_study(graph, x, cache_dir, name, *,
                    event_mac_limit=1 << 16) -> dict:
    """Exhaustive vs analytically-prefiltered campaign on one graph.

    The timed fraction is reported over the layers whose candidate
    space was large enough to filter (spaces of <= 3 candidates pass
    through the prefilter whole, by design -- there is nothing to
    save there, and counting them would dilute the measurement).
    """
    base = pathlib.Path(cache_dir)
    t0 = time.perf_counter()
    exhaustive = tune_graph(graph, x,
                            cache=TuneCache(base / f"{name}-full"),
                            event_mac_limit=event_mac_limit)
    exhaustive_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    filtered = tune_graph(graph, x,
                          cache=TuneCache(base / f"{name}-pre"),
                          event_mac_limit=event_mac_limit,
                          analytic_prefilter=True)
    filtered_s = time.perf_counter() - t0

    winners_match = all(
        (le.blocking, le.backend, le.cores) ==
        (lf.blocking, lf.backend, lf.cores)
        for le, lf in zip(exhaustive.layers, filtered.layers))
    swept = [lo for lo in filtered.layers if not lo.cached]
    filterable = [lo for lo in swept if lo.candidates_scored > 3]
    scored = sum(lo.candidates_scored for lo in filterable)
    timed = sum(lo.candidates for lo in filterable)
    return {
        "name": name,
        "layers": len(filtered.layers),
        "winners_match": bool(winners_match),
        "candidates_scored": scored,
        "candidates_timed": timed,
        "timed_fraction": timed / scored if scored else 0.0,
        "exhaustive_seconds": exhaustive_s,
        "prefiltered_seconds": filtered_s,
        "campaign_speedup": (exhaustive_s / filtered_s
                             if filtered_s > 0 else 1.0),
    }


def run_suite(*, smoke: bool = False) -> dict:
    bitwidths = SMOKE_BITWIDTHS if smoke else _full_bitwidths()
    shapes = SHAPES[:2] if smoke else SHAPES
    differential = differential_study(bitwidths, shapes=shapes)
    campaigns = []
    with tempfile.TemporaryDirectory(prefix="repro-cost-bench-") as tmp:
        demo = demo_graph()
        x = demo_input(batch=2, size=6, seed=0)
        campaigns.append(prefilter_study(demo, x, tmp, "demo"))
        if not smoke:
            rn = _resnet_graph()
            xr = np.random.default_rng(7).standard_normal((2, 1, 12, 12))
            campaigns.append(prefilter_study(rn, xr, tmp, "resnet18",
                                             event_mac_limit=0))
    return {
        "generated_by": "benchmarks/bench_costmodel.py",
        "mode": "smoke" if smoke else "full",
        "targets": TARGETS,
        "differential": differential,
        "prefilter": campaigns,
    }


def check_gate(payload: dict) -> list:
    """Return the violations (empty list = gate passes)."""
    problems = []
    diff = payload["differential"]
    if diff["median_error_pct"] >= TARGETS["median_error_pct"]:
        problems.append(
            f"median prediction error {diff['median_error_pct']:.3f}% "
            f">= {TARGETS['median_error_pct']}% bound")
    if diff["max_error_pct"] >= TARGETS["max_error_pct"]:
        problems.append(
            f"max prediction error {diff['max_error_pct']:.3f}% "
            f">= {TARGETS['max_error_pct']}% bound")
    for camp in payload["prefilter"]:
        if not camp["winners_match"]:
            problems.append(
                f"{camp['name']}: prefiltered campaign picked different "
                f"winners than the exhaustive sweep")
        if camp["timed_fraction"] > TARGETS["max_timed_fraction"]:
            problems.append(
                f"{camp['name']}: timed {camp['timed_fraction']:.0%} of "
                f"the scored space (> "
                f"{TARGETS['max_timed_fraction']:.0%})")
    return problems


def render(payload: dict) -> str:
    diff = payload["differential"]
    lines = [
        "Closed-form cost model vs event engine",
        f"(mode: {payload['mode']})",
        "",
        f"differential: {diff['points']} points, median error "
        f"{diff['median_error_pct']:.4f}%, max "
        f"{diff['max_error_pct']:.4f}% "
        f"({diff['exact_points']} bit-exact predictions)",
        "",
        f"{'campaign':>9} {'layers':>6} {'scored':>7} {'timed':>6} "
        f"{'fraction':>8} {'winners':>8} {'speedup':>8}",
    ]
    for camp in payload["prefilter"]:
        lines.append(
            f"{camp['name']:>9} {camp['layers']:>6} "
            f"{camp['candidates_scored']:>7} "
            f"{camp['candidates_timed']:>6} "
            f"{camp['timed_fraction']:>7.0%} "
            f"{'match' if camp['winners_match'] else 'DIFFER':>8} "
            f"{camp['campaign_speedup']:>7.2f}x")
    return "\n".join(lines)


def write_artifacts(payload: dict) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(render(payload) + "\n")


# -- pytest entry point (CI cost-smoke job) -----------------------------------


def test_costmodel_smoke(save_result):
    payload = run_suite(smoke=True)
    write_artifacts(payload)
    save_result("costmodel", render(payload))
    assert check_gate(payload) == []


# -- standalone entry point ---------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="representative subset + regression gate "
                             "(CI)")
    args = parser.parse_args(argv)

    payload = run_suite(smoke=args.smoke)
    write_artifacts(payload)
    print(render(payload))
    print(f"\nwrote {JSON_PATH} and {RESULTS_PATH}")
    problems = check_gate(payload)
    for problem in problems:
        print(f"GATE FAILURE: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
