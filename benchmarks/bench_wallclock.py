"""Wall-clock speedup of the vectorized fast path over the event engine.

Unlike every other benchmark in this directory, which measures the
*modelled hardware* (cycles, GOPS, pJ), this one measures the
*simulator itself*: host seconds for the event-driven reference versus
the numpy fast path on identical GEMMs, with bit-exactness and
cycle-exactness asserted on every comparison so a speedup can never
hide a fidelity regression.

Targets (recorded in ``BENCH_fastpath.json`` at the repo root):

* >= 10x on the 256x256x256 a8-w8 GEMM (measured: several hundred x);
* >= 5x on a full ResNet-style graph inference;
* >= 3x on the small CI smoke shape -- the regression gate enforced by
  the ``perf-smoke`` CI job (deliberately loose so CI-runner noise
  never produces a false alarm).

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_wallclock.py

or ``--smoke`` for the CI gate.  Under pytest, ``test_wallclock_smoke``
runs the gate and writes ``results/wallclock.txt``.
"""

import argparse
import json
import pathlib
import time

import numpy as np

from repro.core.config import FIGURE6_CONFIGS
from repro.eval.experiments import wallclock_speedup_study
from repro.models.builders import build_tiny
from repro.nn.layers import seed_init
from repro.runtime import InferenceEngine, export_model

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_fastpath.json"
RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "wallclock.txt"

#: Acceptance thresholds; the smoke gate is the CI-enforced floor.
TARGETS = {"gemm_256_a8w8": 10.0, "graph_inference": 5.0, "smoke_gate": 3.0}

SMOKE_SHAPES = [("smoke-a8w8", 8, 8, (32, 32, 64))]


def figure6_shapes(size: int) -> list:
    """The paper's 12 Figure-6 configurations on a square GEMM."""
    return [(f"a{bw_a}-w{bw_b}", bw_a, bw_b, (size, size, size))
            for bw_a, bw_b in FIGURE6_CONFIGS]


def graph_inference_comparison(arch: str = "resnet18", *, batch: int = 2,
                               size: int = 12, seed: int = 0) -> dict:
    """Time one full DAG inference on the event vs the auto backend."""
    seed_init(13)
    model = build_tiny(arch, act_bits=8, weight_bits=8)
    model.eval()
    graph = export_model(model, name=arch)
    x = np.random.default_rng(seed).normal(size=(batch, 1, size, size))

    timings = {}
    outputs = {}
    cycles = {}
    for backend in ("event", "auto"):
        engine = InferenceEngine(graph, backend="mixgemm",
                                 gemm_backend=backend)
        t0 = time.perf_counter()
        result = engine.run(x)
        timings[backend] = time.perf_counter() - t0
        outputs[backend] = result.output
        cycles[backend] = result.total_cycles
    return {
        "arch": arch,
        "batch": batch,
        "event_seconds": timings["event"],
        "fast_seconds": timings["auto"],
        "speedup": timings["event"] / timings["auto"],
        "cycles": cycles["event"],
        "bit_exact": bool(np.array_equal(outputs["event"],
                                         outputs["auto"])),
        "cycles_equal": cycles["event"] == cycles["auto"],
    }


def run_suite(*, size: int = 128, headline_size: int = 256,
              repeats: int = 1, smoke: bool = False) -> dict:
    """Assemble the full payload written to ``BENCH_fastpath.json``."""
    if smoke:
        gemm = wallclock_speedup_study(SMOKE_SHAPES, repeats=repeats)
        headline = gemm[0]
        graph = None
    else:
        shapes = figure6_shapes(size)
        shapes.append(("headline-256-a8w8", 8, 8,
                       (headline_size, headline_size, headline_size)))
        gemm = wallclock_speedup_study(shapes, repeats=repeats)
        headline = gemm[-1]
        graph = graph_inference_comparison()

    def row(r):
        return {
            "name": r.name, "bw_a": r.bw_a, "bw_b": r.bw_b,
            "m": r.m, "n": r.n, "k": r.k,
            "event_seconds": r.event_seconds,
            "fast_seconds": r.fast_seconds,
            "speedup": r.speedup, "cycles": r.cycles,
            "bit_exact": r.bit_exact, "cycles_equal": r.cycles_equal,
        }

    exact = all(r.bit_exact and r.cycles_equal for r in gemm)
    if graph is not None:
        exact = exact and graph["bit_exact"] and graph["cycles_equal"]
    return {
        "generated_by": "benchmarks/bench_wallclock.py",
        "mode": "smoke" if smoke else "full",
        "targets": TARGETS,
        "gemm": [row(r) for r in gemm],
        "headline": row(headline),
        "graph_inference": graph,
        "all_exact": exact,
        "min_gemm_speedup": min(r.speedup for r in gemm),
    }


def render(payload: dict) -> str:
    lines = [
        "Simulator wall-clock: vectorized fast path vs event engine",
        f"(mode: {payload['mode']}; every row bit-exact AND "
        f"cycle-exact: {payload['all_exact']})",
        "",
        f"{'config':>18} {'shape':>14} {'event s':>9} {'fast s':>9} "
        f"{'speedup':>9}",
    ]
    for r in payload["gemm"]:
        shape = f"{r['m']}x{r['k']}x{r['n']}"
        lines.append(
            f"{r['name']:>18} {shape:>14} "
            f"{r['event_seconds']:9.3f} {r['fast_seconds']:9.4f} "
            f"{r['speedup']:8.1f}x")
    graph = payload["graph_inference"]
    if graph is not None:
        lines += [
            "",
            f"graph inference ({graph['arch']}, batch {graph['batch']}): "
            f"{graph['event_seconds']:.3f}s event vs "
            f"{graph['fast_seconds']:.3f}s fast = "
            f"{graph['speedup']:.1f}x (target >= "
            f"{payload['targets']['graph_inference']:.0f}x)",
        ]
    lines.append(
        f"\nheadline {payload['headline']['name']}: "
        f"{payload['headline']['speedup']:.1f}x "
        f"(target >= {payload['targets']['gemm_256_a8w8']:.0f}x)")
    return "\n".join(lines)


def write_artifacts(payload: dict) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(render(payload) + "\n")


def check_gate(payload: dict, min_speedup: float) -> list:
    """Return the violations (empty list = gate passes)."""
    problems = []
    if not payload["all_exact"]:
        problems.append("fast path is not bit-/cycle-exact")
    slowest = payload["min_gemm_speedup"]
    if slowest < min_speedup:
        problems.append(
            f"slowest GEMM speedup {slowest:.2f}x below the "
            f"{min_speedup:.1f}x gate")
    return problems


# -- pytest entry point (CI perf-smoke job) ----------------------------------


def test_wallclock_smoke(save_result):
    payload = run_suite(smoke=True, repeats=3)
    save_result("wallclock", render(payload))
    assert check_gate(payload, TARGETS["smoke_gate"]) == []


# -- standalone entry point ---------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one small shape + regression gate (CI)")
    parser.add_argument("--size", type=int, default=128,
                        help="square size for the Figure-6 sweep")
    parser.add_argument("--headline-size", type=int, default=256,
                        help="square size for the headline a8-w8 row")
    parser.add_argument("--repeats", type=int, default=1,
                        help="take the best of N timings")
    parser.add_argument("--min-speedup", type=float,
                        default=TARGETS["smoke_gate"],
                        help="fail below this slowest-row speedup")
    args = parser.parse_args(argv)

    payload = run_suite(size=args.size, headline_size=args.headline_size,
                        repeats=args.repeats, smoke=args.smoke)
    write_artifacts(payload)
    print(render(payload))
    print(f"\nwrote {JSON_PATH} and {RESULTS_PATH}")
    problems = check_gate(payload, args.min_speedup)
    for problem in problems:
        print(f"GATE FAILURE: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
