"""Table II + Figure 8: u-engine area breakdown and SoC floorplan.

Regenerates the post-PnR-calibrated component areas (13641 um2 total, 1%
of the SoC), the Figure 8 die summary (1.96 mm2), and the Section V
technology-scaled area comparisons against Eyeriss and UNPU.
"""

import pytest

from repro.eval.reporting import render_table2
from repro.eval.tables import table2
from repro.sim.area import SocArea, UEngineArea, scale_area


def test_table2_breakdown(benchmark, save_result):
    rows = benchmark(table2)
    soc = SocArea()
    lines = [
        "Table II: u-engine area breakdown (GF 22FDX, post-PnR calibrated)",
        render_table2(rows),
        "",
        f"Figure 8 SoC die: {soc.total_mm2:.2f} mm2 (paper: 1.96 mm2)",
        f"  caches: {soc.cache_mm2:.2f} mm2, "
        f"core+pads: {soc.core_and_pads_mm2:.2f} mm2, "
        f"u-engine: {soc.uengine.total_mm2:.4f} mm2",
    ]
    save_result("table2", "\n".join(lines))
    total = [r for r in rows if r.component.startswith("Total")][0]
    assert total.area_um2 == pytest.approx(13641.14, abs=0.1)


def test_buffer_depth_area_tradeoff(benchmark, save_result):
    def sweep():
        return {
            depth: UEngineArea(source_buffer_depth=depth).total_um2
            for depth in (8, 16, 32)
        }

    areas = benchmark(sweep)
    growth = areas[32] / areas[16] - 1
    save_result("table2_buffer_area", "\n".join([
        "Source Buffer depth vs u-engine area:",
        *(f"  depth {d}: {a:.0f} um2" for d, a in areas.items()),
        f"  16 -> 32 growth: {growth:.1%} (paper: +67.6%)",
    ]))
    assert growth == pytest.approx(0.676, abs=0.005)


def test_tech_scaled_comparisons(benchmark):
    def ratios():
        mine = UEngineArea().total_mm2
        return (scale_area(12.25, 65) / mine, scale_area(16.0, 65) / mine)

    eyeriss, unpu = benchmark(ratios)
    assert eyeriss == pytest.approx(96.8, rel=0.02)
    assert unpu == pytest.approx(126.5, rel=0.02)
