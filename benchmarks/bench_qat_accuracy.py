"""Section IV-A workflow: real QAT runs on synthetic data.

ImageNet retraining is out of reach offline, so the registry supplies
Figure 7's absolute TOP-1 values; this benchmark *measures* the
qualitative claim with actual training: QAT accuracy degrades as bits
shrink, and 8-bit stays near the float baseline.
"""

import pytest

from repro.eval.experiments import qat_bitwidth_sweep


@pytest.fixture(scope="module")
def sweep():
    return qat_bitwidth_sweep(network="resnet18", bit_ladder=(8, 4, 2),
                              epochs=6)


def test_qat_bitwidth_sweep(benchmark, save_result, sweep):
    def summarize():
        return {r.bits: r.top1 for r in sweep}

    accs = benchmark(summarize)
    save_result("qat_accuracy", "\n".join(
        ["QAT on synthetic data (tiny ResNet, measured TOP-1):"]
        + [f"  {bits}-bit: {acc:.1f}%" for bits, acc in accs.items()]
    ))
    assert set(accs) == {8, 4, 2}


def test_8bit_beats_2bit(benchmark, sweep):
    accs = benchmark(lambda: {r.bits: r.top1 for r in sweep})
    assert accs[8] >= accs[2]


def test_8bit_learns_something(benchmark, sweep):
    accs = benchmark(lambda: {r.bits: r.top1 for r in sweep})
    assert accs[8] > 40.0  # 4 classes -> chance is 25%
