"""Static range analysis: wall time and tightening over Eq. 5.

The abstract interpreter replaces the data-oblivious worst case
``min(K, kc) * 2^(ba + bw - 2)`` with reachable accumulator intervals.
This benchmark times a full analyze + plan-equivalence pass on the
tiny-resnet18 export and reports how many accumulator bits each layer
provably saves.
"""

import pytest

from repro.analysis.ranges import analyze_graph, verify_graph_plans
from repro.models.builders import build_tiny
from repro.nn.layers import seed_init
from repro.runtime.export_modules import export_model


@pytest.fixture(scope="module")
def resnet_graph():
    seed_init(13)
    model = build_tiny("resnet18", act_bits=8, weight_bits=8)
    model.eval()
    return export_model(model, name="resnet18")


def test_range_analysis_tightening(benchmark, save_result, resnet_graph):
    analysis = benchmark(analyze_graph, resnet_graph,
                         input_range=(-4.0, 4.0))
    lines = ["Static range tightening vs Eq. 5 worst case "
             "(tiny-resnet18, input in [-4, 4]):"]
    tighter = 0
    for label, rec in analysis.records.items():
        saved = rec.worst_bits - rec.derived_bits
        tighter += saved > 0
        lines.append(
            f"  {label:<12} derived {rec.derived_bits:2d} bits, "
            f"worst case {rec.worst_bits:2d} bits "
            f"({saved:+d} bits of headroom reclaimed)"
        )
    lines.append(f"  layers provably tighter: "
                 f"{tighter}/{len(analysis.records)}")
    save_result("range_analysis", "\n".join(lines))
    # the headline claim: at least one layer beats the closed form
    assert tighter >= 1
    assert all(rec.derived_bits <= rec.worst_bits
               for rec in analysis.records.values())


def test_plan_equivalence_wall_time(benchmark, resnet_graph):
    diags = benchmark(verify_graph_plans, resnet_graph,
                      accmem_bits=64, input_range=(-4.0, 4.0))
    assert diags == []
