"""PTQ vs QAT (paper Section II-A): where calibration alone stops working.

"While PTQ ... is effective at higher precisions like 7- and 8-bit, QAT
carries the cost of full training, but can scale down to narrower data
sizes."  Both pipelines are real here: the same float-trained tiny CNN is
post-training-quantized and QAT-retrained at each bitwidth on synthetic
data, and the crossover is measured.
"""

import pytest

from repro.models.builders import build_tiny
from repro.nn.data import synthetic_image_dataset
from repro.quant.ptq import post_training_quantize
from repro.quant.qat import (
    QatRecipe,
    calibrate_activations,
    evaluate,
    set_model_bits,
    train_qat,
)


@pytest.fixture(scope="module")
def data():
    return synthetic_image_dataset(
        n_classes=4, n_samples=240, image_size=12, seed=9
    ).split(0.8)


@pytest.fixture(scope="module")
def comparison(data):
    train, val = data
    recipe = QatRecipe(lr=0.05, epochs=6, lr_step=4, batch_size=32)

    # Float-train once (the pretrained starting point).
    float_model = build_tiny("vgg16", act_bits=None, weight_bits=None)
    train_qat(float_model, train, val, recipe, seed=0)
    float_acc = evaluate(float_model, val)

    results = {"float": float_acc, "ptq": {}, "qat": {}}
    for bits in (8, 4, 2):
        # PTQ: retarget the float model, calibrate, no retraining.
        set_model_bits(float_model, bits, bits, first_last_bits=None)
        report = post_training_quantize(float_model, train, val)
        results["ptq"][bits] = report.accuracy
        set_model_bits(float_model, None, None, first_last_bits=None)

        # QAT: retrain with fake quantization in the graph.
        qat_model = build_tiny("vgg16", act_bits=bits, weight_bits=bits)
        set_model_bits(qat_model, bits, bits, first_last_bits=None)
        calibrate_activations(qat_model, train, batch_size=16, batches=4)
        history = train_qat(qat_model, train, val, recipe, seed=0)
        results["qat"][bits] = history.best_val_accuracy
    return results


def test_ptq_vs_qat(benchmark, save_result, comparison):
    results = benchmark(lambda: comparison)
    lines = [
        "PTQ vs QAT on synthetic data (tiny VGG, TOP-1)",
        f"  float baseline: {results['float']:.1%}",
    ]
    for bits in (8, 4, 2):
        lines.append(
            f"  {bits}-bit: PTQ {results['ptq'][bits]:.1%}  "
            f"QAT {results['qat'][bits]:.1%}"
        )
    save_result("ptq_vs_qat", "\n".join(lines))
    assert set(results["ptq"]) == {8, 4, 2}


def test_ptq_fine_at_8bit(benchmark, comparison):
    # Paper: PTQ effective at 8-bit.
    gap = benchmark(lambda: comparison["float"] - comparison["ptq"][8])
    assert gap <= 0.10


def test_qat_rescues_low_bits(benchmark, comparison):
    # Paper: QAT "can scale down to narrower data sizes".
    gap = benchmark(lambda: comparison["qat"][2] - comparison["ptq"][2])
    assert gap >= -0.05


def test_qat_never_much_worse(benchmark, comparison):
    gaps = benchmark(lambda: {
        bits: comparison["qat"][bits] - comparison["ptq"][bits]
        for bits in (8, 4)
    })
    for bits, gap in gaps.items():
        assert gap >= -0.15, bits
