"""Tuned-vs-default payoff of the persistent per-layer autotuner.

Two studies, both of the *runtime itself* (host seconds), not the
modelled hardware:

1. **GEMM rows** -- one large quantized linear layer per paper
   configuration (a8-w8, a4-w4, a2-w8; M=64, K=8192, N=64).  Each row
   is tuned into a fresh cache (:func:`repro.tuning.tune_graph`), then
   the default-blocking plan and the ``tuned=True`` plan run the same
   input and the end-to-end wall clocks are compared.  Bit-exactness
   of the tuned plan against the default plan is asserted per row --
   the tuner's winners passed the exactness gate on the cutout, and
   the compiled plan must reproduce that.
2. **resnet18 end-to-end** -- the tiny-resnet18 graph tuned as a whole
   campaign.  This is the cache-economics study: the duplicate
   BasicBlock shapes must hit the cache within the first campaign
   (``hits >= 1``), and a second campaign over the same cache must
   sweep nothing and come back orders of magnitude faster.

Targets (recorded in ``BENCH_autotune.json`` at the repo root):

* every row bit-exact, tuned wall clock never worse than default
  beyond the noise allowance (10%);
* at least one GEMM row measurably faster than default (full run);
* resnet18 first campaign takes >= 1 cache hit (duplicate shapes tune
  once) and the re-run campaign sweeps 0 layers.

The sweeps are bounded the same way the CI smoke job bounds them:
``event_mac_limit=0`` keeps the slow event-mode candidates out (every
study shape is far past the event gate anyway) and the smoke mode
shrinks the blocking grid.  Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_autotune.py

or ``--smoke`` for the CI gate.  Under pytest, ``test_autotune_smoke``
runs the gate and writes ``results/autotune.txt``.
"""

import argparse
import json
import pathlib
import tempfile
import time

import numpy as np

from repro.core.config import BlockingParams
from repro.models.builders import build_tiny
from repro.nn.layers import seed_init
from repro.runtime import compile_graph, export_model
from repro.runtime.graph import GraphModel, NodeSpec
from repro.tuning import TuneCache, tune_graph

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_autotune.json"
RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "autotune.txt"

#: Noise allowance for "tuned never worse": host timers jitter, and a
#: layer whose winner IS the default must not fail the gate on noise.
TARGETS = {"noise_allowance": 0.10, "min_headline_speedup": 1.0}

#: (paper config, act_bits, weight_bits) rows for the GEMM study.
GEMM_CONFIGS = [("a8-w8", 8, 8), ("a4-w4", 4, 4), ("a2-w8", 2, 8)]
GEMM_M, GEMM_K, GEMM_N = 64, 8192, 64

#: The smoke grid: kc is the axis that matters for the fast path (the
#: mc/nc/mr/nr dedup collapses the rest), so sweep it alone.
SMOKE_GRID = [BlockingParams(mc=16, nc=16, kc=kc)
              for kc in (16, 64, 256, 1024)]


def _gemm_graph(name, act_bits, weight_bits, seed=0):
    rng = np.random.default_rng(seed)
    node = NodeSpec(op="quant_linear", attrs={
        "act_bits": act_bits, "weight_bits": weight_bits,
        "act_signed": True, "act_scale": 0.05})
    node.tensors["weight"] = rng.standard_normal((GEMM_N, GEMM_K)) * 0.05
    return GraphModel(nodes=[node], name=name)


def _resnet_graph(arch: str = "resnet18"):
    seed_init(13)
    model = build_tiny(arch, act_bits=8, weight_bits=8)
    model.eval()
    return export_model(model, name=arch)


def _best_of_pair(fn_a, fn_b, x, repeats: int) -> tuple[float, float]:
    """Interleaved best-of timing of two runners on the same input.

    Alternating the two keeps slow host drift (frequency scaling, a
    background process waking up) from landing entirely on one side --
    essential when the pair is *structurally identical* (a layer whose
    tuned winner is the default) and any apparent gap is pure noise.
    """
    fn_a(x)
    fn_b(x)
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_a(x)
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b(x)
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def gemm_study(cache_dir, *, blockings=None, repeats: int = 5,
               tune_repeats: int = 3) -> list[dict]:
    """Tuned-vs-default wall clock per paper GEMM configuration."""
    rows = []
    for name, act_bits, weight_bits in GEMM_CONFIGS:
        graph = _gemm_graph(name, act_bits, weight_bits)
        x = np.random.default_rng(1).standard_normal((GEMM_M, GEMM_K))
        cache = TuneCache(pathlib.Path(cache_dir) / name)
        report = tune_graph(graph, x, cache=cache, blockings=blockings,
                            event_mac_limit=0, repeats=tune_repeats)
        (lo,) = report.layers
        default = compile_graph(graph, backend="mixgemm")
        tuned = compile_graph(graph, backend="mixgemm", tuned=True,
                              tune_cache=cache)
        bit_exact = bool(np.array_equal(default.run(x).output,
                                        tuned.run(x).output))
        default_s, tuned_s = _best_of_pair(default.run, tuned.run, x,
                                           repeats)
        rows.append({
            "name": name, "m": GEMM_M, "k": GEMM_K, "n": GEMM_N,
            "winner_blocking": list(lo.blocking),
            "winner_backend": lo.backend,
            "winner_is_default": not tuned.info.tuned_layers,
            "candidates": lo.candidates,
            "sweep_speedup": lo.speedup,
            "default_seconds": default_s,
            "tuned_seconds": tuned_s,
            "speedup": default_s / tuned_s,
            "bit_exact": bit_exact,
        })
    return rows


def resnet_study(cache_dir, *, blockings=None, repeats: int = 5,
                 tune_repeats: int = 2, size: int = 12) -> dict:
    """End-to-end campaign economics on the tiny resnet18 graph."""
    graph = _resnet_graph()
    x = np.random.default_rng(7).standard_normal((2, 1, size, size))
    cache = TuneCache(pathlib.Path(cache_dir) / "resnet18")

    t0 = time.perf_counter()
    first = tune_graph(graph, x, cache=cache, blockings=blockings,
                       event_mac_limit=0, repeats=tune_repeats)
    first_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    rerun = tune_graph(graph, x, cache=cache, blockings=blockings,
                       event_mac_limit=0, repeats=tune_repeats)
    rerun_s = time.perf_counter() - t0

    default = compile_graph(graph, backend="mixgemm")
    tuned = compile_graph(graph, backend="mixgemm", tuned=True,
                          tune_cache=cache)
    bit_exact = bool(np.array_equal(default.run(x).output,
                                    tuned.run(x).output))
    default_s, tuned_s = _best_of_pair(default.run, tuned.run, x,
                                       repeats)
    return {
        "layers": len(first.layers),
        "distinct_shapes": first.swept,
        "first_campaign_hits": first.hits,
        "first_campaign_seconds": first_s,
        "rerun_swept": rerun.swept,
        "rerun_seconds": rerun_s,
        "campaign_speedup": first_s / rerun_s if rerun_s > 0 else 1.0,
        "tuned_layers": len(tuned.info.tuned_layers),
        "default_seconds": default_s,
        "tuned_seconds": tuned_s,
        "speedup": default_s / tuned_s,
        "bit_exact": bit_exact,
    }


def run_suite(*, smoke: bool = False, repeats: int = 5) -> dict:
    blockings = SMOKE_GRID if smoke else None
    with tempfile.TemporaryDirectory(prefix="repro-tune-bench-") as tmp:
        gemm = gemm_study(tmp, blockings=blockings, repeats=repeats,
                          tune_repeats=2 if smoke else 3)
        resnet = resnet_study(tmp, blockings=blockings, repeats=repeats,
                              tune_repeats=1 if smoke else 2)
    headline = max(gemm, key=lambda r: r["speedup"])
    return {
        "generated_by": "benchmarks/bench_autotune.py",
        "mode": "smoke" if smoke else "full",
        "targets": TARGETS,
        "gemm": gemm,
        "resnet18": resnet,
        "headline": headline["name"],
        "headline_speedup": headline["speedup"],
        "all_exact": bool(all(r["bit_exact"] for r in gemm)
                          and resnet["bit_exact"]),
    }


def check_gate(payload: dict, *, require_speedup: bool = False) -> list:
    """Return the violations (empty list = gate passes)."""
    problems = []
    allowance = 1.0 + TARGETS["noise_allowance"]
    if not payload["all_exact"]:
        problems.append("a tuned plan is not bit-exact vs default")
    for r in payload["gemm"] + [dict(payload["resnet18"], name="resnet18")]:
        if r["tuned_seconds"] > r["default_seconds"] * allowance:
            problems.append(
                f"{r['name']}: tuned {r['tuned_seconds']:.5f}s worse "
                f"than default {r['default_seconds']:.5f}s beyond the "
                f"{TARGETS['noise_allowance']:.0%} noise allowance")
    rn = payload["resnet18"]
    if rn["first_campaign_hits"] < 1:
        problems.append(
            "resnet18 first campaign took no cache hits: duplicate "
            "layer shapes are not tuning once")
    if rn["rerun_swept"] != 0:
        problems.append(
            f"resnet18 re-run swept {rn['rerun_swept']} layers; a "
            f"warm cache must sweep none")
    if require_speedup and \
            payload["headline_speedup"] < TARGETS["min_headline_speedup"]:
        problems.append(
            f"no GEMM row measurably faster than default (best "
            f"{payload['headline_speedup']:.2f}x)")
    return problems


def render(payload: dict) -> str:
    lines = [
        "Persistent per-layer autotuner: tuned vs default wall clock",
        f"(mode: {payload['mode']}; every row bit-exact: "
        f"{payload['all_exact']})",
        "",
        f"{'config':>8} {'shape':>14} {'winner kc':>10} {'cands':>6} "
        f"{'default s':>10} {'tuned s':>9} {'speedup':>8}",
    ]
    for r in payload["gemm"]:
        shape = f"{r['m']}x{r['k']}x{r['n']}"
        kc = ("default" if r["winner_is_default"]
              else str(r["winner_blocking"][2]))
        lines.append(
            f"{r['name']:>8} {shape:>14} {kc:>10} {r['candidates']:>6} "
            f"{r['default_seconds']:10.5f} {r['tuned_seconds']:9.5f} "
            f"{r['speedup']:7.2f}x")
    rn = payload["resnet18"]
    lines += [
        "",
        f"resnet18: {rn['layers']} layers, {rn['distinct_shapes']} "
        f"distinct shapes, {rn['first_campaign_hits']} duplicate-shape "
        f"cache hits in the first campaign",
        f"  campaign: first {rn['first_campaign_seconds']:.2f}s, warm "
        f"re-run {rn['rerun_seconds']:.3f}s "
        f"({rn['campaign_speedup']:.0f}x; swept {rn['rerun_swept']})",
        f"  inference: default {rn['default_seconds']:.5f}s, tuned "
        f"{rn['tuned_seconds']:.5f}s ({rn['speedup']:.2f}x, "
        f"{rn['tuned_layers']} layers at non-default blocking)",
        "",
        f"headline: {payload['headline']} "
        f"{payload['headline_speedup']:.2f}x tuned vs default",
    ]
    return "\n".join(lines)


def write_artifacts(payload: dict) -> None:
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(render(payload) + "\n")


# -- pytest entry point (CI tune-smoke job) -----------------------------------


def test_autotune_smoke(save_result):
    payload = run_suite(smoke=True, repeats=3)
    write_artifacts(payload)
    save_result("autotune", render(payload))
    assert check_gate(payload) == []


# -- standalone entry point ---------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="bounded grid + regression gate (CI)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="take the best of N timings per row")
    args = parser.parse_args(argv)

    payload = run_suite(smoke=args.smoke, repeats=args.repeats)
    write_artifacts(payload)
    print(render(payload))
    print(f"\nwrote {JSON_PATH} and {RESULTS_PATH}")
    problems = check_gate(payload, require_speedup=not args.smoke)
    for problem in problems:
        print(f"GATE FAILURE: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
