"""Section III-A/IV-B memory claims: compressed storage of sub-byte DNNs.

"It enables keeping the DNN activations and weights compressed in main
memory ... thus allowing to deploy bigger DNNs on resource-constrained
devices", and the Figure 7 discussion's "saving 60% in memory usage" for
a5-w5 against a8-w8.  This benchmark measures the packed model sizes
(u-vector padding included) across networks and bitwidths, plus a golden
test-vector artifact for RTL verification.
"""

import pytest

from repro.core.golden import dump_suite, generate_suite, verify_vector
from repro.eval.experiments import memory_footprint_study


def test_memory_footprint(benchmark, save_result):
    results = benchmark(memory_footprint_study)
    lines = ["Packed model sizes (u-vector padding included):"]
    for r in results:
        lines.append(
            f"  {r.network:16s} {r.bits}-bit: {r.weight_mb:7.2f} MB "
            f"(saves {r.saving_vs_8bit:5.1%} vs 8-bit, padding "
            f"{r.padding_overhead:.1%})"
        )
    save_result("memory_footprint", "\n".join(lines))
    assert len(results) == 6 * 4


def test_a5_saves_near_60_percent(benchmark):
    results = benchmark(memory_footprint_study, bit_ladder=(5,))
    for r in results:
        # Paper: "saving 60% in memory usage" with a5-w5 (bit-count
        # ratio 5/8 gives 37.5%; the paper's figure also counts the
        # halved activation traffic -- we check the storage component).
        assert r.saving_vs_8bit == pytest.approx(0.375, abs=0.05)


def test_2bit_quarters_the_model(benchmark):
    results = benchmark(memory_footprint_study, bit_ladder=(2,))
    for r in results:
        assert r.saving_vs_8bit == pytest.approx(0.75, abs=0.02)


def test_vgg16_fits_flash_at_low_bits(benchmark):
    # 138M parameters: 138 MB at 8-bit, ~35 MB at 2-bit -- the "deploy
    # bigger DNNs" enabling claim.
    results = benchmark(memory_footprint_study, bit_ladder=(8, 2))
    vgg = {r.bits: r.weight_mb for r in results
           if r.network == "vgg16"}
    assert vgg[8] > 130
    assert vgg[2] < 40


def test_golden_vector_artifact(benchmark, save_result, results_dir):
    """Generate and verify the RTL golden-vector suite."""
    suite = benchmark(generate_suite, 4)
    assert all(verify_vector(v) for v in suite)
    path = results_dir / "golden_vectors.json"
    dump_suite(str(path), suite)
    save_result("golden_vectors_summary", "\n".join([
        f"golden vectors: {len(suite)} across 49 configurations",
        f"serialized to {path.name} (format mix-gemm-golden-v1)",
    ]))
