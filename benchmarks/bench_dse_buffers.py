"""Section III-C in-text DSE numbers: buffer stalls and padding.

Runs the event-driven u-engine over GEMM tasks at Source Buffer depths
8/16/32 and reads the PMU (paper: 17.8%/14.3%/11.2% full-buffer stalls,
bs.get stalls only at depth 32, 2.3%), plus the zero-padding memory
overhead across all 49 configurations (paper: 2.4% average).
"""

import pytest

from repro.sim.dse import (
    average_padding_overhead,
    buffer_depth_study,
    padding_overheads,
)


@pytest.fixture(scope="module")
def study():
    return buffer_depth_study()


def test_buffer_depth_study(benchmark, save_result):
    results = benchmark(
        buffer_depth_study,
        depths=(8, 16, 32),
        configs=[(8, 8), (4, 4), (2, 2)],
        gemm_size=(16, 16, 768),
    )
    lines = ["Source Buffer depth study (paper: 17.8%/14.3%/11.2% "
             "buffer stalls; 2.3% bs.get stalls at depth 32)"]
    for r in results:
        lines.append(
            f"  depth {r.depth:2d}: buffer stalls "
            f"{r.buffer_stall_fraction:.1%}, bs.get stalls "
            f"{r.get_stall_fraction:.2%}"
        )
    save_result("dse_buffers", "\n".join(lines))
    fractions = [r.buffer_stall_fraction for r in results]
    assert fractions[0] >= fractions[1] >= fractions[2]


def test_get_stalls_grow_with_depth(benchmark, study):
    deepest, shallowest = benchmark(
        lambda: (study[-1].get_stall_fraction, study[0].get_stall_fraction)
    )
    assert deepest >= shallowest


def test_padding_overhead(benchmark, save_result):
    avg = benchmark(average_padding_overhead)
    worst = max(padding_overheads().items(), key=lambda kv: kv[1])
    save_result("dse_padding", "\n".join([
        f"average padding overhead: {avg:.2%} (paper: 2.4%)",
        f"worst configuration: a{worst[0][0]}-w{worst[0][1]} "
        f"at {worst[1]:.2%}",
    ]))
    assert avg < 0.035
