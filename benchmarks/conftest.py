"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and writes
the rendered rows to ``results/<name>.txt`` so the artifacts survive the
run (pytest captures stdout).  ``pytest benchmarks/ --benchmark-only``
runs the whole evaluation.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Write one experiment's rendered output to results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")

    return _save
