"""The paper's NLP projection: BERT on the Mix-GEMM SoC.

Section IV: "low mixed-precision quantization of BERT ... whose compute
expansive kernels based on matrix-matrix multiplications could be
accelerated exploiting Mix-GEMM".  This benchmark runs the BERT-base
encoder's exact GEMM sequence through the performance and energy models.
"""

import pytest

from repro.core.config import MixGemmConfig
from repro.models.transformer import bert_base, project_gemm_workload
from repro.sim.energy import EnergyModel
from repro.sim.perf import MixGemmPerfModel


@pytest.fixture(scope="module")
def workload():
    return bert_base(seq_len=128)


def test_bert_projection(benchmark, save_result, workload):
    perf = MixGemmPerfModel()
    energy = EnergyModel()

    def sweep():
        out = {}
        for bits in (8, 6, 4, 2):
            cfg = MixGemmConfig(bw_a=bits, bw_b=bits)
            r = project_gemm_workload(workload, perf, cfg)
            eff = energy.from_perf(r, cfg)
            out[bits] = (r.gops, r.seconds, eff.gops_per_watt)
        return out

    results = benchmark(sweep)
    lines = [f"BERT-base (seq 128, {workload.total_macs / 1e9:.1f} GMAC) "
             f"projected on the Mix-GEMM SoC:"]
    for bits, (gops, seconds, eff) in results.items():
        lines.append(
            f"  a{bits}-w{bits}: {gops:5.2f} GOPS, "
            f"{seconds:5.2f} s/sequence, {eff:6.0f} GOPS/W"
        )
    save_result("bert_projection", "\n".join(lines))
    gops_ladder = [v[0] for v in results.values()]
    assert gops_ladder == sorted(gops_ladder)


def test_bert_speedup_band_matches_cnn_trend(benchmark, workload):
    perf = MixGemmPerfModel()

    def ratio():
        r8 = project_gemm_workload(workload, perf,
                                   MixGemmConfig(bw_a=8, bw_b=8))
        r2 = project_gemm_workload(workload, perf,
                                   MixGemmConfig(bw_a=2, bw_b=2))
        return r2.gops / r8.gops

    gain = benchmark(ratio)
    # The 8-bit -> 2-bit gain on large GEMMs tracks the Figure 6 ratio
    # (27.2 / 10.2 = 2.67x).
    assert 2.0 < gain < 3.0


def test_sequence_length_sensitivity(benchmark):
    from repro.models.transformer import bert_base as build

    perf = MixGemmPerfModel()
    cfg = MixGemmConfig(bw_a=4, bw_b=4)

    def sweep():
        return {
            s: project_gemm_workload(build(s), perf, cfg).gops
            for s in (64, 128, 256)
        }

    gops = benchmark(sweep)
    # Longer sequences mean bigger GEMMs and better utilization.
    assert gops[256] >= gops[64]
