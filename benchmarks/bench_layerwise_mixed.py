"""Per-layer mixed precision: the design-space the paper enables.

Section III-B notes the Control Unit reconfigures in one cycle, so "the
data sizes of weights and activations can be easily tuned for each layer
of the model".  This benchmark runs the greedy per-layer optimizer under
several accuracy budgets and shows the per-layer assignment dominating
the best uniform configuration -- extending the Figure 7 Pareto frontier.
"""

import pytest

from repro.eval.layerwise import LayerwiseOptimizer
from repro.models.inventory import get_network


@pytest.fixture(scope="module")
def optimizers():
    return {
        name: LayerwiseOptimizer(name, get_network(name))
        for name in ("resnet18", "mobilenet_v1")
    }


def test_layerwise_vs_uniform(benchmark, save_result, optimizers):
    def sweep():
        rows = []
        for name, opt in optimizers.items():
            for budget in (0.5, 1.0, 2.0, 4.0):
                mixed = opt.optimize(budget)
                uniform = opt.best_uniform_within(budget)
                rows.append((name, budget, mixed, uniform))
        return rows

    rows = benchmark(sweep)
    lines = ["Per-layer mixed precision vs best uniform "
             "(accuracy-loss budgets):"]
    for name, budget, mixed, uniform in rows:
        lines.append(
            f"  {name:14s} budget {budget:.1f}%: mixed "
            f"{mixed.throughput_gops():5.2f} GOPS (mean "
            f"{mixed.mean_bits:.1f} bits) vs uniform "
            f"{uniform.throughput_gops():5.2f} GOPS"
        )
    save_result("layerwise_mixed", "\n".join(lines))
    for _, _, mixed, uniform in rows:
        assert mixed.total_cycles <= uniform.total_cycles


def test_budget_throughput_tradeoff(benchmark, optimizers):
    opt = optimizers["resnet18"]

    def sweep():
        return [opt.optimize(b).throughput_gops()
                for b in (0.25, 1.0, 4.0)]

    gops = benchmark(sweep)
    assert gops == sorted(gops)  # looser budgets buy throughput


def test_depthwise_protection(benchmark, optimizers):
    opt = optimizers["mobilenet_v1"]
    net = get_network("mobilenet_v1")

    def bits_by_kind():
        result = opt.optimize(3.0)
        dw = [result.bits[l.name] for l in net.conv_layers
              if l.kind == "depthwise"]
        pw = [result.bits[l.name] for l in net.conv_layers
              if l.kind == "pointwise"]
        return sum(dw) / len(dw), sum(pw) / len(pw)

    dw_mean, pw_mean = benchmark(bits_by_kind)
    assert dw_mean >= pw_mean
