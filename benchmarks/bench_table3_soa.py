"""Table III: comparison with the state of the art.

Assembles the full comparison table: related-work rows from the published
registry, Mix-GEMM's row measured by this repository's models (throughput
and TOPS/W per benchmark, area), and checks the measured row against the
paper's published row plus the Section V head-to-head claims (Dory 2.6x,
Ottavi 2.4-3.8x, GEMMLowp parity at a8-w8).
"""

import pytest

from repro.baselines.related import RELATED_WORK
from repro.eval.reporting import render_table3
from repro.eval.tables import paper_mixgemm_row, table3


@pytest.fixture(scope="module")
def rows():
    return table3()


@pytest.fixture(scope="module")
def measured(rows):
    return [r for r in rows if r.measured][0]


def test_table3_assembly(benchmark, save_result):
    all_rows = benchmark(table3)
    save_result("table3", "\n".join([
        "Table III: comparison with state-of-the-art",
        render_table3(all_rows),
    ]))
    assert len(all_rows) == len(RELATED_WORK) + 1


def test_measured_row_vs_paper(benchmark, measured, save_result):
    paper = benchmark(paper_mixgemm_row)
    lines = ["Mix-GEMM row: paper vs measured (GOPS ranges)"]
    for bench in sorted(paper.perf):
        lines.append(
            f"  {bench}: paper {paper.perf[bench]} "
            f"vs measured {measured.perf.get(bench, '-')}"
        )
    save_result("table3_paper_vs_measured", "\n".join(lines))
    for bench in ("alexnet", "vgg16", "resnet18", "mobilenet_v1"):
        assert measured.perf[bench].lo == pytest.approx(
            paper.perf[bench].lo, rel=0.2
        ), bench


def test_dory_speedup_claim(benchmark, measured):
    # Section V: "up to 2.6x better performance on MobileNet-V1" vs Dory.
    dory = RELATED_WORK["dory"].perf["mobilenet_v1"].hi
    ratio = benchmark(lambda: measured.perf["mobilenet_v1"].hi / dory)
    assert 1.8 < ratio < 3.2


def test_ottavi_speedup_claim(benchmark, measured):
    # Section V: "from 2.4x to 3.8x faster than [52]" on the convolution
    # microbenchmark.
    ottavi = RELATED_WORK["ottavi"].perf["convolution"]

    def ratios():
        return (measured.perf["convolution"].lo / ottavi.lo,
                measured.perf["convolution"].hi / ottavi.hi)

    lo_ratio, hi_ratio = benchmark(ratios)
    assert 1.5 < min(lo_ratio, hi_ratio)
    assert max(lo_ratio, hi_ratio) < 5.0


def test_gemmlowp_parity_at_a8w8(benchmark, measured):
    # Section V: GEMMLowp comparable to the a8-w8 configuration.
    def ratios():
        return {
            bench: measured.perf[bench].lo
            / RELATED_WORK["gemmlowp"].perf[bench].lo
            for bench in ("alexnet", "resnet18")
        }

    for bench, ratio in benchmark(ratios).items():
        assert 0.6 < ratio < 1.6, bench


def test_area_smallest_among_accelerators(benchmark, measured):
    # Mix-GEMM's u-engine is far smaller than decoupled accelerators.
    area = benchmark(lambda: measured.area_mm2)
    assert area < 0.05
    assert area < RELATED_WORK["xpulpnn"].area_mm2 * 2
